(* Tests for the ABFT machinery: encoding, the four update rules, error
   detection/location/correction, schemes, the analytic overhead model
   and the Optimization-2 placement model. *)

open Matrix
open Abft

let check_float = Alcotest.check (Alcotest.float 1e-9)

let consistent ?(tol = 1e-8) chk tile = Verify.check ~tol chk tile

(* ------------------------------------------------------------------ *)
(* Checksum encoding                                                   *)
(* ------------------------------------------------------------------ *)

let test_weights () =
  let v = Checksum.weights ~d:2 ~b:4 in
  Alcotest.(check int) "rows" 4 (Mat.rows v);
  Alcotest.(check int) "cols" 2 (Mat.cols v);
  check_float "v1 all ones" 1. (Mat.get v 3 0);
  check_float "v2 ramp" 4. (Mat.get v 3 1)

let test_encode_values () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let chk = Checksum.encode a in
  let c = Checksum.matrix chk in
  (* column sums: 4, 6; weighted (1,2): 1+6=7, 2+8=10 *)
  check_float "chk1 col0" 4. (Mat.get c 0 0);
  check_float "chk1 col1" 6. (Mat.get c 0 1);
  check_float "chk2 col0" 7. (Mat.get c 1 0);
  check_float "chk2 col1" 10. (Mat.get c 1 1)

let test_encode_consistent () =
  let a = Spd.random ~seed:1 8 8 in
  let chk = Checksum.encode a in
  Alcotest.(check bool) "fresh encode verifies" true (consistent chk a)

let test_encode_d_rows () =
  let a = Spd.random ~seed:2 6 6 in
  let chk = Checksum.encode ~d:3 a in
  Alcotest.(check int) "d" 3 (Checksum.d chk);
  Alcotest.(check int) "b" 6 (Checksum.b chk);
  Alcotest.(check bool) "verifies" true (consistent chk a)

let test_encode_rectangular () =
  (* The encoding is shape-agnostic: tall panels verify and correct
     exactly like square tiles (used by the QR extension). *)
  let p = Spd.random ~seed:80 20 6 in
  let pristine = Mat.copy p in
  let chk = Checksum.encode p in
  Alcotest.(check int) "rows" 20 (Checksum.rows chk);
  Alcotest.(check int) "cols" 6 (Checksum.b chk);
  Alcotest.(check bool) "clean" true (Verify.check chk p);
  Mat.set p 17 3 (Mat.get p 17 3 +. 123.);
  (match Verify.verify chk p with
  | Verify.Corrected [ f ] ->
      Alcotest.(check int) "row" 17 f.Verify.row;
      Alcotest.(check int) "col" 3 f.Verify.col
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine p)

let test_store_lower () =
  let t = Tile.of_mat ~block:4 (Spd.random_spd ~seed:3 12) in
  let store = Checksum.encode_lower t in
  Alcotest.(check int) "grid" 3 (Checksum.store_grid store);
  Alcotest.(check bool) "diag tile" true
    (consistent (Checksum.get store 1 1) (Tile.tile t 1 1));
  Alcotest.(check bool) "off-diag tile" true
    (consistent (Checksum.get store 2 0) (Tile.tile t 2 0));
  Alcotest.(check bool) "upper rejected" true
    (try
       ignore (Checksum.get store 0 2);
       false
     with Invalid_argument _ -> true);
  (* Space: 6 lower tiles x 2 x 4 doubles x 8 bytes, twice over for the
     self-protecting shadow replica. *)
  Alcotest.(check int) "bytes" (2 * 6 * 2 * 4 * 8) (Checksum.total_bytes store)

(* ------------------------------------------------------------------ *)
(* Update rules preserve the invariant                                 *)
(* ------------------------------------------------------------------ *)

let b = 6

let test_update_syrk () =
  let a = Spd.random_spd ~seed:4 b in
  let lc = Spd.random ~seed:5 b b in
  let chk_a = Checksum.encode a and chk_lc = Checksum.encode lc in
  (* A' = A - LC.LC^T (full update, as the driver applies it). *)
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. lc lc a;
  Update.syrk ~chk_a ~chk_lc ~lc;
  Alcotest.(check bool) "invariant kept" true (consistent chk_a a)

let test_update_gemm () =
  let bmat = Spd.random ~seed:6 b b in
  let ld = Spd.random ~seed:7 b b and lc = Spd.random ~seed:8 b b in
  let chk_b = Checksum.encode bmat and chk_ld = Checksum.encode ld in
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. ld lc bmat;
  Update.gemm ~chk_b ~chk_ld ~lc;
  Alcotest.(check bool) "invariant kept" true (consistent chk_b bmat)

let test_update_potf2 () =
  let a = Spd.random_spd ~seed:9 b in
  let chk = Checksum.encode a in
  let la = Mat.copy a in
  Lapack.potf2 Types.Lower la;
  Update.potf2 ~chk ~la;
  Alcotest.(check bool) "chk(L) consistent with L" true
    (consistent ~tol:1e-7 chk la)

let test_update_potf2_equals_trsm_form () =
  let a = Spd.random_spd ~seed:10 b in
  let chk1 = Checksum.encode a and chk2 = Checksum.encode a in
  let la = Mat.copy a in
  Lapack.potf2 Types.Lower la;
  Update.potf2 ~chk:chk1 ~la;
  Update.potf2_by_trsm ~chk:chk2 ~la;
  Alcotest.(check bool) "Algorithm 2 = trsm form" true
    (Mat.approx_equal ~tol:1e-9 (Checksum.matrix chk1) (Checksum.matrix chk2))

let test_update_trsm () =
  let a = Spd.random_spd ~seed:11 b in
  let la = Mat.copy a in
  Lapack.potf2 Types.Lower la;
  let panel = Spd.random ~seed:12 b b in
  let chk = Checksum.encode panel in
  (* LB = B . (LA^T)^-1 *)
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag la panel;
  Update.trsm ~chk ~la;
  Alcotest.(check bool) "invariant kept" true (consistent ~tol:1e-7 chk panel)

let test_update_chain_full_iteration () =
  (* Push one full Cholesky iteration through all four rules. *)
  let a = Spd.random_spd ~seed:13 b in
  let panel = Spd.random ~seed:14 b b in
  let lc = Spd.random ~seed:15 b b and ld = Spd.random ~seed:16 b b in
  let chk_a = Checksum.encode a
  and chk_p = Checksum.encode panel
  and chk_lc = Checksum.encode lc
  and chk_ld = Checksum.encode ld in
  (* SYRK on diag *)
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. lc lc a;
  Update.syrk ~chk_a ~chk_lc ~lc;
  (* shift to keep SPD for the potf2 step *)
  for i = 0 to b - 1 do
    Mat.set a i i (Mat.get a i i +. (4. *. float_of_int b))
  done;
  let chk_a = Checksum.encode a in
  (* GEMM on panel *)
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. ld lc panel;
  Update.gemm ~chk_b:chk_p ~chk_ld ~lc;
  (* POTF2 *)
  Lapack.potf2 Types.Lower a;
  Update.potf2 ~chk:chk_a ~la:a;
  (* TRSM *)
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag a panel;
  Update.trsm ~chk:chk_p ~la:a;
  Alcotest.(check bool) "diag consistent" true (consistent ~tol:1e-7 chk_a a);
  Alcotest.(check bool) "panel consistent" true (consistent ~tol:1e-7 chk_p panel)

let test_update_shape_guards () =
  let chk = Checksum.encode (Spd.random ~seed:17 4 4) in
  let wrong = Spd.random ~seed:18 6 6 in
  Alcotest.(check bool) "raises" true
    (try
       Update.trsm ~chk ~la:wrong;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Verification: detect, locate, correct                               *)
(* ------------------------------------------------------------------ *)

let test_verify_clean () =
  let a = Spd.random ~seed:19 8 8 in
  let chk = Checksum.encode a in
  (match Verify.verify chk a with
  | Verify.Clean -> ()
  | o -> Alcotest.failf "expected clean, got %a" Verify.pp_outcome o)

let test_verify_corrects_single_error () =
  let a = Spd.random ~seed:20 8 8 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode a in
  Mat.set a 5 2 (Mat.get a 5 2 +. 1000.);
  (match Verify.verify chk a with
  | Verify.Corrected [ f ] ->
      Alcotest.(check int) "row" 5 f.Verify.row;
      Alcotest.(check int) "col" 2 f.Verify.col
  | o -> Alcotest.failf "expected 1 correction, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify_corrects_bitflip () =
  let a = Spd.random ~seed:21 8 8 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode a in
  Mat.set a 3 6 (Bitflip.flip (Mat.get a 3 6) 55);
  (match Verify.verify chk a with
  | Verify.Corrected _ -> ()
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify_corrects_one_error_per_column () =
  (* The paper: up to one error per column is correctable. *)
  let a = Spd.random ~seed:22 8 8 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode a in
  Mat.set a 1 0 (Mat.get a 1 0 +. 100.);
  Mat.set a 6 3 (Mat.get a 6 3 -. 250.);
  Mat.set a 0 7 (Mat.get a 0 7 +. 5.);
  (match Verify.verify chk a with
  | Verify.Corrected fixes -> Alcotest.(check int) "three" 3 (List.length fixes)
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify_two_errors_same_column_uncorrectable () =
  let a = Spd.random ~seed:23 8 8 in
  let chk = Checksum.encode a in
  Mat.set a 1 4 (Mat.get a 1 4 +. 100.);
  Mat.set a 6 4 (Mat.get a 6 4 +. 70.);
  match Verify.verify chk a with
  | Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Verify.pp_outcome o

let test_verify_single_checksum_detects_only () =
  let a = Spd.random ~seed:24 8 8 in
  let chk = Checksum.encode ~d:1 a in
  Mat.set a 2 2 (Mat.get a 2 2 +. 50.);
  Alcotest.(check bool) "detected" false (Verify.check chk a);
  match Verify.verify chk a with
  | Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Verify.pp_outcome o

let test_verify_cancelling_errors_caught_by_second_row () =
  (* Two errors in one column that cancel in the plain sum are still
     visible to the weighted row; they are not locatable, but they must
     not pass as clean. *)
  let a = Spd.random ~seed:25 8 8 in
  let chk = Checksum.encode a in
  Mat.set a 1 3 (Mat.get a 1 3 +. 100.);
  Mat.set a 5 3 (Mat.get a 5 3 -. 100.);
  match Verify.verify chk a with
  | Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Verify.pp_outcome o

let test_verify_rounding_tolerance () =
  (* Tiny perturbations below the threshold must be treated as noise. *)
  let a = Spd.random ~seed:26 8 8 in
  let chk = Checksum.encode a in
  Mat.set a 0 0 (Mat.get a 0 0 +. 1e-13);
  match Verify.verify chk a with
  | Verify.Clean -> ()
  | o -> Alcotest.failf "expected clean, got %a" Verify.pp_outcome o

let test_verify_after_update_chain_catches_fault () =
  (* Inject mid-chain and confirm verification against the *updated*
     checksum still locates the error — the end-to-end ABFT story. *)
  let a = Spd.random_spd ~seed:27 b in
  let lc = Spd.random ~seed:28 b b in
  let chk_a = Checksum.encode a and chk_lc = Checksum.encode lc in
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. lc lc a;
  Update.syrk ~chk_a ~chk_lc ~lc;
  let pristine = Mat.copy a in
  Mat.set a 2 4 (Mat.get a 2 4 +. 77.);
  (match Verify.verify chk_a a with
  | Verify.Corrected [ f ] ->
      Alcotest.(check int) "row" 2 f.Verify.row;
      Alcotest.(check int) "col" 4 f.Verify.col
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify_corrupted_checksum_detected () =
  let a = Spd.random ~seed:29 8 8 in
  let chk = Checksum.encode a in
  Checksum.corrupt chk ~row:1 ~col:2 1e9;
  Alcotest.(check bool) "not clean" false (Verify.check chk a)

(* ------------------------------------------------------------------ *)
(* Non-finite corruption (Inf/NaN bit flips)                           *)
(* ------------------------------------------------------------------ *)

let test_verify_inf_flip_corrected () =
  let a = Spd.random ~seed:50 8 8 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode a in
  (* flipping bit 62 on a small value creates a huge/overflowing one *)
  Mat.set a 4 2 (Bitflip.flip (Mat.get a 4 2) 62);
  Alcotest.(check bool) "really non-finite or huge" true
    ((not (Float.is_finite (Mat.get a 4 2)))
    || abs_float (Mat.get a 4 2) > 1e100);
  (match Verify.verify chk a with
  | Verify.Corrected _ -> ()
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify_nan_corrected () =
  let a = Spd.random ~seed:51 8 8 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode a in
  Mat.set a 3 5 Float.nan;
  (match Verify.verify chk a with
  | Verify.Corrected [ f ] ->
      Alcotest.(check int) "row" 3 f.Verify.row;
      Alcotest.(check int) "col" 5 f.Verify.col;
      Alcotest.(check bool) "finite fix" true (Float.is_finite f.Verify.fixed)
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify_two_nans_uncorrectable () =
  let a = Spd.random ~seed:52 8 8 in
  let chk = Checksum.encode a in
  Mat.set a 1 5 Float.nan;
  Mat.set a 6 5 Float.infinity;
  match Verify.verify chk a with
  | Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Verify.pp_outcome o

let test_verify_nan_not_clean () =
  let a = Spd.random ~seed:53 8 8 in
  let chk = Checksum.encode a in
  Mat.set a 0 0 Float.nan;
  Alcotest.(check bool) "detected" false (Verify.check chk a)

let test_ft_recovers_from_inf_flip () =
  (* End to end: an exponent flip to a huge value mid-factorization,
     absorbed by Enhanced before the next read. *)
  let open Cholesky in
  let a = Spd.random_spd ~seed:54 48 in
  let plan =
    [ Fault.storage_error ~bit:62 ~iteration:2 ~block:(3, 0) ~element:(2, 2) () ]
  in
  let cfg = Config.make ~machine:Hetsim.Machine.testbench ~block:8 () in
  let r = Ft.factor ~plan cfg a in
  Alcotest.(check bool) "success" true (r.Ft.outcome = Ft.Success);
  Alcotest.(check int) "no restart" 0 r.Ft.stats.Ft.restarts

(* ------------------------------------------------------------------ *)
(* Two-error correction with d = 4 checksum rows (extension)           *)
(* ------------------------------------------------------------------ *)

let test_verify2_corrects_two_in_a_column () =
  let a = Spd.random ~seed:40 10 10 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode ~d:4 a in
  Mat.set a 2 5 (Mat.get a 2 5 +. 300.);
  Mat.set a 7 5 (Mat.get a 7 5 -. 120.);
  (match Verify.verify chk a with
  | Verify.Corrected fixes -> Alcotest.(check int) "two fixes" 2 (List.length fixes)
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-5 pristine a)

let test_verify2_cancelling_pair () =
  (* e1 = -e2: invisible to the plain sum, recovered from the weighted
     rows. *)
  let a = Spd.random ~seed:41 10 10 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode ~d:4 a in
  Mat.set a 1 3 (Mat.get a 1 3 +. 250.);
  Mat.set a 8 3 (Mat.get a 8 3 -. 250.);
  (match Verify.verify chk a with
  | Verify.Corrected _ -> ()
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-5 pristine a)

let test_verify2_single_still_works () =
  let a = Spd.random ~seed:42 8 8 in
  let pristine = Mat.copy a in
  let chk = Checksum.encode ~d:4 a in
  Mat.set a 4 4 (Mat.get a 4 4 +. 77.);
  (match Verify.verify chk a with
  | Verify.Corrected [ f ] ->
      Alcotest.(check int) "row" 4 f.Verify.row;
      Alcotest.(check int) "col" 4 f.Verify.col
  | o -> Alcotest.failf "expected one fix, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_verify2_three_errors_uncorrectable () =
  let a = Spd.random ~seed:43 10 10 in
  let chk = Checksum.encode ~d:4 a in
  Mat.set a 0 6 (Mat.get a 0 6 +. 100.);
  Mat.set a 4 6 (Mat.get a 4 6 +. 90.);
  Mat.set a 9 6 (Mat.get a 9 6 -. 50.);
  match Verify.verify chk a with
  | Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Verify.pp_outcome o

let test_verify2_d2_still_fails_on_pairs () =
  (* The paper's d = 2 cannot repair two errors in one column. *)
  let a = Spd.random ~seed:44 10 10 in
  let chk = Checksum.encode a in
  Mat.set a 2 5 (Mat.get a 2 5 +. 300.);
  Mat.set a 7 5 (Mat.get a 7 5 -. 120.);
  match Verify.verify chk a with
  | Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Verify.pp_outcome o

let test_max_correctable () =
  Alcotest.(check int) "d=1" 0 (Verify.max_correctable_per_column ~d:1);
  Alcotest.(check int) "d=2" 1 (Verify.max_correctable_per_column ~d:2);
  Alcotest.(check int) "d=4" 2 (Verify.max_correctable_per_column ~d:4)

let test_verify2_update_rules_preserve_d4 () =
  (* The update rules are d-agnostic: push a SYRK through with d = 4
     and corrupt two elements of one column afterwards. *)
  let a = Spd.random_spd ~seed:45 b in
  let lc = Spd.random ~seed:46 b b in
  let chk_a = Checksum.encode ~d:4 a and chk_lc = Checksum.encode ~d:4 lc in
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. lc lc a;
  Update.syrk ~chk_a ~chk_lc ~lc;
  let pristine = Mat.copy a in
  Mat.set a 0 2 (Mat.get a 0 2 +. 55.);
  Mat.set a 3 2 (Mat.get a 3 2 -. 200.);
  (match Verify.verify chk_a a with
  | Verify.Corrected _ -> ()
  | o -> Alcotest.failf "expected corrected, got %a" Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-5 pristine a)

(* ------------------------------------------------------------------ *)
(* Scheme                                                              *)
(* ------------------------------------------------------------------ *)

let test_scheme_names_roundtrip () =
  List.iter
    (fun s ->
      match Scheme.of_string (Scheme.name s) with
      | Ok s' -> Alcotest.(check string) "roundtrip" (Scheme.name s) (Scheme.name s')
      | Error e -> Alcotest.fail e)
    (Scheme.all @ [ Scheme.Enhanced { k = 5 } ])

let test_scheme_of_string_aliases () =
  Alcotest.(check bool) "magma" true (Scheme.of_string "magma" = Ok Scheme.No_ft);
  Alcotest.(check bool) "enhanced" true
    (Scheme.of_string "enhanced" = Ok (Scheme.Enhanced { k = 1 }));
  Alcotest.(check bool) "enhanced-k3" true
    (Scheme.of_string "enhanced-k3" = Ok (Scheme.Enhanced { k = 3 }));
  Alcotest.(check bool) "junk" true (Result.is_error (Scheme.of_string "junk"));
  Alcotest.(check bool) "bad k" true
    (Result.is_error (Scheme.of_string "enhanced-k0"))

let test_scheme_capabilities () =
  (* The paper's Table VII capability matrix. *)
  Alcotest.(check bool) "offline/comp" false
    (Scheme.corrects_computing_errors Scheme.Offline);
  Alcotest.(check bool) "online/comp" true
    (Scheme.corrects_computing_errors Scheme.Online);
  Alcotest.(check bool) "online/storage" false
    (Scheme.corrects_storage_errors Scheme.Online);
  Alcotest.(check bool) "enhanced/storage" true
    (Scheme.corrects_storage_errors (Scheme.enhanced ()));
  Alcotest.(check int) "interval" 4
    (Scheme.verification_interval (Scheme.Enhanced { k = 4 }))

(* ------------------------------------------------------------------ *)
(* Overhead model                                                      *)
(* ------------------------------------------------------------------ *)

let p = { Overhead_model.n = 20480; b = 256; k = 1 }

let test_model_encode () =
  check_float "2n^2" (2. *. (20480. ** 2.)) (Overhead_model.encode_flops p);
  check_float "6/n relative"
    (6. /. 20480.)
    (Overhead_model.encode_flops p /. Overhead_model.cholesky_flops p)

let test_model_update_relative_matches_flops () =
  check_float "12/n + 2/B"
    (Overhead_model.update_flops p /. Overhead_model.cholesky_flops p)
    (Overhead_model.update_relative p)

let test_model_recalc_relative_matches_flops () =
  check_float "online" (12. /. 20480.)
    (Overhead_model.recalc_flops_online p /. Overhead_model.cholesky_flops p);
  List.iter
    (fun k ->
      let p = { p with Overhead_model.k } in
      check_float
        (Printf.sprintf "enhanced k=%d" k)
        (Overhead_model.recalc_flops_enhanced p
        /. Overhead_model.cholesky_flops p)
        (Overhead_model.recalc_relative_enhanced p))
    [ 1; 3; 5 ]

let test_model_k1_enhanced_vs_online () =
  (* At K=1 the enhanced recalculation includes the full GEMM-input
     verification, so it must exceed online's. *)
  Alcotest.(check bool) "enhanced > online" true
    (Overhead_model.recalc_relative_enhanced p
    > Overhead_model.recalc_relative_online p)

let test_model_k_decreases_overhead () =
  let at k =
    Overhead_model.overall_relative_enhanced { p with Overhead_model.k }
  in
  Alcotest.(check bool) "k=3 < k=1" true (at 3 < at 1);
  Alcotest.(check bool) "k=5 < k=3" true (at 5 < at 3)

let test_model_asymptotes () =
  check_float "online 2/B" (2. /. 256.) (Overhead_model.asymptote_online p);
  check_float "enhanced (2K+2)/BK at K=1" (4. /. 256.)
    (Overhead_model.asymptote_enhanced p);
  (* Large n converges to the asymptote. *)
  let big = { Overhead_model.n = 10_000_000; b = 256; k = 1 } in
  Alcotest.(check bool) "converges" true
    (abs_float
       (Overhead_model.overall_relative_enhanced big
       -. Overhead_model.asymptote_enhanced big)
    < 1e-4)

let test_model_space () =
  check_float "2/B" (2. /. 256.) (Overhead_model.space_relative p);
  check_float "bytes" (8. *. 2. *. (20480. ** 2.) /. 256.)
    (Overhead_model.space_bytes p)

let test_model_fused_traffic () =
  let sep = Overhead_model.update_words_separate p in
  let fus = Overhead_model.update_words_fused p in
  check_float "fused words n^2/2" (20480. ** 2. /. 2.) fus;
  Alcotest.(check bool) "fused moves fewer words" true (fus < sep);
  let ratio = Overhead_model.update_traffic_ratio p in
  Alcotest.(check bool) "ratio in (0,1)" true (ratio > 0. && ratio < 1.);
  (* For n >> B the ratio tends to 3B/(2n). *)
  let asymptote = 3. *. 256. /. (2. *. 20480.) in
  Alcotest.(check bool) "near 3B/(2n)" true
    (abs_float (ratio -. asymptote) /. asymptote < 0.05)

let test_model_gemm_carry () =
  (* π·R·d/m with defaults d=2, R=2, π=1 (the fused, in-cache case). *)
  let fused = Overhead_model.gemm_carry_relative ~m:256 () in
  check_float "R d / m" (4. /. 256.) fused;
  let separate =
    Overhead_model.gemm_carry_relative ~pass_penalty:4. ~m:256 ()
  in
  Alcotest.(check bool) "pass penalty raises the separate cost" true
    (separate > fused);
  Alcotest.(check bool) "m validation" true
    (try
       ignore (Overhead_model.gemm_carry_relative ~m:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Placement model (Optimization 2)                                    *)
(* ------------------------------------------------------------------ *)

let test_placement_paper_choices () =
  (* §VII-D: CPU updating on Tardis, GPU updating on Bulldozer64. *)
  let d_tardis =
    Placement.decide Hetsim.Machine.tardis
      { Overhead_model.n = 20480; b = 256; k = 1 }
  in
  Alcotest.(check string) "tardis -> cpu" "cpu"
    (Placement.choice_name d_tardis.Placement.choice);
  let d_bull =
    Placement.decide Hetsim.Machine.bulldozer64
      { Overhead_model.n = 30720; b = 512; k = 1 }
  in
  Alcotest.(check string) "bulldozer64 -> gpu" "gpu"
    (Placement.choice_name d_bull.Placement.choice)

let test_placement_estimates_positive () =
  let d =
    Placement.decide Hetsim.Machine.tardis
      { Overhead_model.n = 8192; b = 256; k = 3 }
  in
  Alcotest.(check bool) "positive" true
    (d.Placement.t_pick_gpu > 0. && d.Placement.t_pick_cpu > 0.)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_tile =
  QCheck.Gen.(
    int_range 2 12 >>= fun n ->
    array_size (return (n * n)) (float_range (-100.) 100.) >|= fun d ->
    Mat.of_col_major ~rows:n ~cols:n d)

let arb_tile = QCheck.make gen_tile ~print:Mat.to_string

let prop_encode_verifies =
  QCheck.Test.make ~name:"fresh encoding always verifies" ~count:200 arb_tile
    (fun a -> Verify.check (Checksum.encode a) a)

let prop_single_error_corrected =
  QCheck.Test.make ~name:"any single significant error is located+corrected"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         gen_tile >>= fun a ->
         let n = Mat.rows a in
         int_range 0 (n - 1) >>= fun i ->
         int_range 0 (n - 1) >>= fun j ->
         float_range 1. 1e6 >>= fun d ->
         oneofl [ d; -.d ] >|= fun delta -> (a, i, j, delta)))
    (fun (a, i, j, delta) ->
      let chk = Checksum.encode a in
      let want = Mat.get a i j in
      Mat.set a i j (want +. delta);
      match Verify.verify chk a with
      | Verify.Corrected [ f ] ->
          f.Verify.row = i && f.Verify.col = j
          && abs_float (Mat.get a i j -. want) < 1e-6
      | _ -> false)

let prop_syrk_update_preserves =
  QCheck.Test.make ~name:"syrk rule preserves invariant" ~count:100
    (QCheck.make QCheck.Gen.(pair gen_tile gen_tile))
    (fun (a, lc0) ->
      let n = Mat.rows a in
      QCheck.assume (Mat.rows lc0 = n);
      let lc = lc0 in
      let chk_a = Checksum.encode a and chk_lc = Checksum.encode lc in
      Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. lc lc a;
      Update.syrk ~chk_a ~chk_lc ~lc;
      Verify.check ~tol:1e-6 chk_a a)

let prop_trsm_update_preserves =
  QCheck.Test.make ~name:"trsm rule preserves invariant" ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 2 10) (int_range 0 100000) >|= fun (n, seed) ->
         (Spd.random_spd ~seed n, Spd.random ~seed:(seed + 1) n n)))
    (fun (spd, panel) ->
      let la = Mat.copy spd in
      Lapack.potf2 Types.Lower la;
      let chk = Checksum.encode panel in
      Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag la
        panel;
      Update.trsm ~chk ~la;
      Verify.check ~tol:1e-5 chk panel)

let prop_two_errors_corrected_d4 =
  QCheck.Test.make ~name:"d=4: any two significant errors in a column corrected"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 4 12 >>= fun n ->
         array_size (return (n * n)) (float_range (-50.) 50.) >>= fun data ->
         int_range 0 (n - 1) >>= fun col ->
         int_range 0 (n - 1) >>= fun r1 ->
         int_range 0 (n - 1) >>= fun r2 ->
         float_range 10. 1e5 >>= fun e1 ->
         float_range 10. 1e5 >|= fun e2 ->
         (Mat.of_col_major ~rows:n ~cols:n data, col, r1, r2, e1, -.e2)))
    (fun (a, col, r1, r2, e1, e2) ->
      QCheck.assume (r1 <> r2);
      let pristine = Mat.copy a in
      let chk = Checksum.encode ~d:4 a in
      Mat.set a r1 col (Mat.get a r1 col +. e1);
      Mat.set a r2 col (Mat.get a r2 col +. e2);
      match Verify.verify chk a with
      | Verify.Corrected _ -> Mat.approx_equal ~tol:1e-4 pristine a
      | _ -> false)

let prop_high_exponent_flip_handled =
  QCheck.Test.make
    ~name:"any single high-exponent flip is corrected or honestly refused"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 2 12 >>= fun n ->
         array_size (return (n * n)) (float_range (-100.) 100.) >>= fun data ->
         int_range 0 (n - 1) >>= fun i ->
         int_range 0 (n - 1) >>= fun j ->
         int_range 53 63 >|= fun bit ->
         (Mat.of_col_major ~rows:n ~cols:n data, i, j, bit)))
    (fun (a, i, j, bit) ->
      let pristine = Mat.copy a in
      let chk = Checksum.encode a in
      Mat.set a i j (Bitflip.flip (Mat.get a i j) bit);
      QCheck.assume (Mat.get a i j <> Mat.get pristine i j);
      match Verify.verify chk a with
      | Verify.Corrected _ -> Mat.approx_equal ~tol:1e-5 pristine a
      | Verify.Uncorrectable _ -> true (* honest refusal, never silent lies *)
      | Verify.Checksum_repaired _ ->
          (* only the tile was corrupted; the replicas agree, so replica
             healing must never trigger here *)
          false
      | Verify.Clean ->
          (* acceptable only if the flip was below threshold *)
          abs_float (Mat.get a i j -. Mat.get pristine i j) < 1e-3)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_encode_verifies;
      prop_two_errors_corrected_d4;
      prop_high_exponent_flip_handled;
      prop_single_error_corrected;
      prop_syrk_update_preserves;
      prop_trsm_update_preserves;
    ]

let () =
  Alcotest.run "abft"
    [
      ( "checksum",
        [
          Alcotest.test_case "weights" `Quick test_weights;
          Alcotest.test_case "encode values" `Quick test_encode_values;
          Alcotest.test_case "encode consistent" `Quick test_encode_consistent;
          Alcotest.test_case "d rows" `Quick test_encode_d_rows;
          Alcotest.test_case "rectangular" `Quick test_encode_rectangular;
          Alcotest.test_case "lower store" `Quick test_store_lower;
        ] );
      ( "update",
        [
          Alcotest.test_case "syrk" `Quick test_update_syrk;
          Alcotest.test_case "gemm" `Quick test_update_gemm;
          Alcotest.test_case "potf2 (Algorithm 2)" `Quick test_update_potf2;
          Alcotest.test_case "potf2 = trsm form" `Quick
            test_update_potf2_equals_trsm_form;
          Alcotest.test_case "trsm" `Quick test_update_trsm;
          Alcotest.test_case "full iteration chain" `Quick
            test_update_chain_full_iteration;
          Alcotest.test_case "shape guards" `Quick test_update_shape_guards;
        ] );
      ( "verify",
        [
          Alcotest.test_case "clean" `Quick test_verify_clean;
          Alcotest.test_case "single error corrected" `Quick
            test_verify_corrects_single_error;
          Alcotest.test_case "bitflip corrected" `Quick
            test_verify_corrects_bitflip;
          Alcotest.test_case "one per column" `Quick
            test_verify_corrects_one_error_per_column;
          Alcotest.test_case "two in a column uncorrectable" `Quick
            test_verify_two_errors_same_column_uncorrectable;
          Alcotest.test_case "d=1 detects only" `Quick
            test_verify_single_checksum_detects_only;
          Alcotest.test_case "cancelling errors" `Quick
            test_verify_cancelling_errors_caught_by_second_row;
          Alcotest.test_case "rounding tolerance" `Quick
            test_verify_rounding_tolerance;
          Alcotest.test_case "after update chain" `Quick
            test_verify_after_update_chain_catches_fault;
          Alcotest.test_case "corrupted checksum detected" `Quick
            test_verify_corrupted_checksum_detected;
        ] );
      ( "verify_nonfinite",
        [
          Alcotest.test_case "inf flip corrected" `Quick
            test_verify_inf_flip_corrected;
          Alcotest.test_case "nan corrected" `Quick test_verify_nan_corrected;
          Alcotest.test_case "two nonfinite uncorrectable" `Quick
            test_verify_two_nans_uncorrectable;
          Alcotest.test_case "nan not clean" `Quick test_verify_nan_not_clean;
          Alcotest.test_case "ft recovers from inf" `Quick
            test_ft_recovers_from_inf_flip;
        ] );
      ( "verify_d4",
        [
          Alcotest.test_case "two errors in a column" `Quick
            test_verify2_corrects_two_in_a_column;
          Alcotest.test_case "cancelling pair" `Quick test_verify2_cancelling_pair;
          Alcotest.test_case "single error still works" `Quick
            test_verify2_single_still_works;
          Alcotest.test_case "three errors uncorrectable" `Quick
            test_verify2_three_errors_uncorrectable;
          Alcotest.test_case "d=2 fails on pairs" `Quick
            test_verify2_d2_still_fails_on_pairs;
          Alcotest.test_case "max_correctable" `Quick test_max_correctable;
          Alcotest.test_case "update rules at d=4" `Quick
            test_verify2_update_rules_preserve_d4;
        ] );
      ( "scheme",
        [
          Alcotest.test_case "name roundtrip" `Quick test_scheme_names_roundtrip;
          Alcotest.test_case "of_string aliases" `Quick
            test_scheme_of_string_aliases;
          Alcotest.test_case "capability matrix" `Quick test_scheme_capabilities;
        ] );
      ( "overhead_model",
        [
          Alcotest.test_case "encode" `Quick test_model_encode;
          Alcotest.test_case "update relative" `Quick
            test_model_update_relative_matches_flops;
          Alcotest.test_case "recalc relative" `Quick
            test_model_recalc_relative_matches_flops;
          Alcotest.test_case "enhanced > online at k=1" `Quick
            test_model_k1_enhanced_vs_online;
          Alcotest.test_case "k decreases overhead" `Quick
            test_model_k_decreases_overhead;
          Alcotest.test_case "asymptotes" `Quick test_model_asymptotes;
          Alcotest.test_case "space" `Quick test_model_space;
          Alcotest.test_case "fused traffic" `Quick test_model_fused_traffic;
          Alcotest.test_case "gemm carry" `Quick test_model_gemm_carry;
        ] );
      ( "placement",
        [
          Alcotest.test_case "paper choices" `Quick test_placement_paper_choices;
          Alcotest.test_case "estimates positive" `Quick
            test_placement_estimates_positive;
        ] );
      ("properties", props);
    ]
