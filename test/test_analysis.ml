(* Tests for lib/analysis (the abftlint rules and driver): each rule
   fires on its fixture, stays quiet on the allowlisted idioms, and
   honours the waiver attributes; the driver's exit-code and JSON
   contracts hold. *)

module A = Analysis

let lint ?rules ?(file = "test.ml") src = A.Driver.lint_string ?rules ~file src

let rule id =
  match A.Rules.find id with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not registered" id

let blocking fs = List.filter A.Finding.is_blocking fs
let with_rule id fs = List.filter (fun f -> f.A.Finding.rule = id) fs

let check_count name n fs = Alcotest.(check int) name n (List.length fs)

(* ------------------------------------------------------------------ *)
(* R1: no shared mutable writes in pool closures                       *)
(* ------------------------------------------------------------------ *)

let test_r1_captured_ref () =
  let fs =
    lint ~rules:[ rule "R1" ]
      {|let f pool a =
  let total = ref 0. in
  Pool.parallel_for pool ~lo:0 ~hi:10 (fun i -> total := !total +. a.(i));
  !total|}
  in
  check_count "one finding" 1 (blocking fs);
  let f = List.hd (blocking fs) [@abft.waive "count checked on previous line"] in
  Alcotest.(check string) "rule" "R1" f.A.Finding.rule;
  Alcotest.(check int) "line" 3 f.A.Finding.line

let test_r1_disjoint_index_ok () =
  (* writes indexed by the item binding are the allowlisted idiom *)
  let fs =
    lint ~rules:[ rule "R1" ]
      {|let f pool a =
  Pool.parallel_for pool ~lo:0 ~hi:10 (fun i -> a.(i) <- a.(i) *. 2.)|}
  in
  check_count "no findings" 0 fs

let test_r1_item_local_ok () =
  (* state created inside the work item is private to it *)
  let fs =
    lint ~rules:[ rule "R1" ]
      {|let f pool a =
  Pool.parallel_for pool ~lo:0 ~hi:10 (fun i ->
      let acc = ref 0. in
      acc := !acc +. a.(i);
      a.(i) <- !acc)|}
  in
  check_count "no findings" 0 fs

let test_r1_constant_index_flagged () =
  let fs =
    lint ~rules:[ rule "R1" ]
      {|let f pool hits =
  Pool.parallel_for pool ~lo:0 ~hi:10 (fun _i -> hits.(0) <- 1)|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r1_named_closure () =
  (* the closure reaches the sink through a let binding *)
  let fs =
    lint ~rules:[ rule "R1" ]
      {|let f pool =
  let seen = ref 0 in
  let work _i = incr seen in
  Pool.parallel_for pool ~lo:0 ~hi:10 work|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r1_waiver () =
  let fs =
    lint ~rules:[ rule "R1" ]
      {|let f pool flag =
  Pool.parallel_for pool ~lo:0 ~hi:10 (fun _i ->
      (flag := true) [@abft.waive "monotone flag"])|}
  in
  check_count "finding still reported" 1 fs;
  check_count "but not blocking" 0 (blocking fs);
  let f = List.hd fs [@abft.waive "count checked on previous line"] in
  Alcotest.(check (option string))
    "reason" (Some "monotone flag") f.A.Finding.waiver_reason

let test_r1_setfield () =
  let fs =
    lint ~rules:[ rule "R1" ]
      {|type acc = { mutable best : float }
let f pool a =
  let acc = { best = 0. } in
  Pool.parallel_chunks pool ~lo:0 ~hi:10 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        if a.(i) > acc.best then acc.best <- a.(i)
      done)|}
  in
  check_count "one finding" 1 (blocking fs)

(* ------------------------------------------------------------------ *)
(* R2: verify-before-read in FT drivers                                *)
(* ------------------------------------------------------------------ *)

let test_r2_unverified_read () =
  let fs =
    lint ~rules:[ rule "R2" ] ~file:"lib/cholesky/ft.ml"
      {|let update st a b c = Blas3.gemm ~alpha:(-1.) ~beta:1. a b c|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r2_dominated_read_ok () =
  let fs =
    lint ~rules:[ rule "R2" ] ~file:"lib/cholesky/ft.ml"
      {|let update st a b c =
  verify_block st;
  Blas3.gemm ~alpha:(-1.) ~beta:1. a b c|}
  in
  check_count "no findings" 0 fs

let test_r2_out_of_scope_file () =
  (* the rule only patrols the FT drivers *)
  let fs =
    lint ~rules:[ rule "R2" ] ~file:"lib/matrix/blas3.ml"
      {|let update a b c = Blas3.gemm a b c|}
  in
  check_count "no findings" 0 fs

let test_r2_waiver () =
  let fs =
    lint ~rules:[ rule "R2" ] ~file:"lib/qr/ft_qr.ml"
      {|let residual q r a =
  Mat.norm_fro
    (Mat.sub_mat (Blas3.gemm_alloc q r [@abft.unverified "post-check"]) a)|}
  in
  check_count "reported" 1 fs;
  check_count "not blocking" 0 (blocking fs)

(* ------------------------------------------------------------------ *)
(* R3: banned constructs                                               *)
(* ------------------------------------------------------------------ *)

let test_r3_catch_all () =
  let fs = lint ~rules:[ rule "R3" ] {|let f g x = try g x with _ -> 0.|} in
  check_count "one finding" 1 (blocking fs)

let test_r3_specific_handler_ok () =
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let f g x = try g x with Failure _ -> 0. | Not_found -> 1.|}
  in
  check_count "no findings" 0 fs

let test_r3_banned_idents () =
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let a x = Obj.magic x
let b l = List.hd l
let c l i = List.nth l i
let d x y = compare x y|}
  in
  check_count "four findings" 4 (blocking fs)

let test_r3_float_eq () =
  let fs = lint ~rules:[ rule "R3" ] {|let is_zero x = x = 0.|} in
  check_count "one finding" 1 (blocking fs)

let test_r3_float_neq_fast_path_ok () =
  (* <> against 0./1. literals is the BLAS sparsity fast path *)
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let f alpha beta = if alpha <> 0. && beta <> 1. then Some alpha else None|}
  in
  check_count "no findings" 0 fs;
  let fs2 = lint ~rules:[ rule "R3" ] {|let g x = x <> 0.5|} in
  check_count "other literals flagged" 1 (blocking fs2)

let test_r3_typed_compare_ok () =
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let f a b = Float.compare a b
let g a b = Float.equal a b
let h x = Float.equal x 0.|}
  in
  check_count "no findings" 0 fs

let test_r3_waiver () =
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let f g x = (try g x with _ -> 0.) [@abft.waive "total by design"]|}
  in
  check_count "reported" 1 fs;
  check_count "not blocking" 0 (blocking fs)

(* ------------------------------------------------------------------ *)
(* R4: retry loops must be bounded                                     *)
(* ------------------------------------------------------------------ *)

let test_r4_unbounded_flagged () =
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let rec retry_op dev op =
  match dev op with Some r -> r | None -> retry_op dev op|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r4_param_name_flagged () =
  (* an innocuous function name with an [attempt] parameter still counts *)
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let submit run =
  let rec go ~attempt =
    match run () with Some r -> r | None -> go ~attempt:(attempt + 1)
  in
  go ~attempt:0|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r4_bounded_ok () =
  (* cap consulted as a bare identifier *)
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let rec retry_op dev op ~attempt ~max_retries =
  match dev op with
  | Some r -> Some r
  | None ->
      if attempt >= max_retries then None
      else retry_op dev op ~attempt:(attempt + 1) ~max_retries|}
  in
  check_count "no findings" 0 fs

let test_r4_record_cap_ok () =
  (* cap consulted through a record path, the drivers' idiom *)
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let retried t run =
  let rec go ~attempt =
    match run () with
    | Some r -> r
    | None -> if attempt >= t.policy.max_retries then fail () else go ~attempt:(attempt + 1)
  in
  go ~attempt:0|}
  in
  check_count "no findings" 0 fs

let test_r4_non_retry_recursion_ok () =
  (* unrelated recursion is out of scope however unbounded it looks *)
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let rec walk = function [] -> 0 | _ :: tl -> 1 + walk tl|}
  in
  check_count "no findings" 0 fs

let test_r4_while_flagged () =
  (* the serving layer's imperative drain/resubmit loops are retry
     loops in everything but shape *)
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let drain q = while retry_pending q do resubmit_head q done|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r4_while_bounded_ok () =
  (* cap consulted in the loop condition *)
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let drain q ~max_attempts =
  let attempts = ref 0 in
  while retry_pending q && !attempts < max_attempts do
    resubmit_head q;
    incr attempts
  done|}
  in
  check_count "no findings" 0 fs

let test_r4_non_retry_while_ok () =
  (* an ordinary event loop is out of scope however unbounded it looks *)
  let fs =
    lint ~rules:[ rule "R4" ] {|let serve running = while !running do step () done|}
  in
  check_count "no findings" 0 fs

let test_r4_while_waiver () =
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let drain q =
  (while retry_pending q do resubmit_head q done)
  [@abft.waive "resubmit_head pops the item on its final failure"]|}
  in
  check_count "reported" 1 fs;
  check_count "not blocking" 0 (blocking fs)

let test_r4_waiver () =
  let fs =
    lint ~rules:[ rule "R4" ]
      {|let rec retry_forever run x =
  (match run x with Some r -> r | None -> retry_forever run x)
[@abft.waive "run raises after its internal budget"]|}
  in
  check_count "reported" 1 fs;
  check_count "not blocking" 0 (blocking fs)

(* ------------------------------------------------------------------ *)
(* R5: unchecked access stays in the micro-kernel layer                *)
(* ------------------------------------------------------------------ *)

let test_r5_outside_kernel_flagged () =
  let fs =
    lint ~rules:[ rule "R5" ] ~file:"lib/cholesky/ft.ml"
      {|let f a i = Array.unsafe_get a i|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r5_kernel_module_ok () =
  (* the audited micro-kernels are the allowlist *)
  let fs =
    lint ~rules:[ rule "R5" ] ~file:"lib/matrix/blas3.ml"
      {|let f a i = Array.unsafe_get a i|}
  in
  check_count "no findings" 0 fs

let test_r5_mat_accessor_flagged () =
  (* any module's unsafe_* accessor counts, not just Array's *)
  let fs =
    lint ~rules:[ rule "R5" ] ~file:"lib/abft/checksum.ml"
      {|let f m i j = Mat.unsafe_set m i j 0.|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r5_bare_reference_flagged () =
  (* passing the accessor as a value escapes the audit just the same *)
  let fs =
    lint ~rules:[ rule "R5" ]
      {|let reader = Array.unsafe_get|}
  in
  check_count "one finding" 1 (blocking fs)

let test_r5_safe_access_ok () =
  let fs =
    lint ~rules:[ rule "R5" ]
      {|let f a i = a.(i) <- a.(i) +. 1.|}
  in
  check_count "no findings" 0 fs

let test_r5_waiver () =
  let fs =
    lint ~rules:[ rule "R5" ]
      {|let f a i = (Array.unsafe_get a i) [@abft.waive "caller checks i"]|}
  in
  check_count "reported" 1 fs;
  check_count "not blocking" 0 (blocking fs)

(* ------------------------------------------------------------------ *)
(* Driver: fixtures, exit codes, JSON                                  *)
(* ------------------------------------------------------------------ *)

(* Fixtures are copied next to the test binary by the (source_tree
   fixtures) dep, so anchor paths there — works under both `dune
   runtest` (cwd = test dir) and `dune exec` (cwd = project root). *)
let fixture p =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "fixtures/lint")
    p

let test_fixtures_fire () =
  (* every bad fixture must produce blocking findings for its rule *)
  let expect file rule_id =
    match A.Driver.lint_file (fixture file) with
    | Error e -> Alcotest.failf "%s: %s" file e
    | Ok fs ->
        let hits = blocking (with_rule rule_id fs) in
        if hits = [] then
          Alcotest.failf "%s: no blocking %s findings" file rule_id
  in
  expect "r1_bad.ml" "R1";
  expect "r2/ft.ml" "R2";
  expect "r3_bad.ml" "R3";
  expect "r4_bad.ml" "R4";
  expect "r5_bad.ml" "R5"

let test_fixture_counts () =
  let count file rule_id =
    match A.Driver.lint_file (fixture file) with
    | Error e -> Alcotest.failf "%s: %s" file e
    | Ok fs -> List.length (blocking (with_rule rule_id fs))
  in
  Alcotest.(check int) "r1_bad findings" 4 (count "r1_bad.ml" "R1");
  Alcotest.(check int) "r2 findings" 2 (count "r2/ft.ml" "R2");
  Alcotest.(check int) "r3_bad findings" 6 (count "r3_bad.ml" "R3");
  Alcotest.(check int) "r4_bad findings" 4 (count "r4_bad.ml" "R4");
  Alcotest.(check int) "r5_bad findings" 4 (count "r5_bad.ml" "R5")

let test_clean_fixture () =
  match A.Driver.lint_file (fixture "clean.ml") with
  | Error e -> Alcotest.fail e
  | Ok fs ->
      check_count "no blocking findings" 0 (blocking fs);
      check_count "the waived flag write is still reported" 1 fs

let test_run_exit_codes () =
  let bad = A.Driver.run [ fixture "r3_bad.ml" ] in
  Alcotest.(check int) "blocking findings exit 1" 1 (A.Driver.exit_code bad);
  let clean = A.Driver.run [ fixture "clean.ml" ] in
  Alcotest.(check int) "clean exits 0" 0 (A.Driver.exit_code clean);
  let missing = A.Driver.run [ "no/such/path.ml" ] in
  Alcotest.(check int) "missing path exits 2" 2 (A.Driver.exit_code missing)

let test_rule_selection () =
  (match A.Rules.select [ "r1"; "R3" ] with
  | Ok rs ->
      Alcotest.(check (list string))
        "case-insensitive ids" [ "R1"; "R3" ]
        (List.map (fun r -> r.A.Rules.id) rs)
  | Error e -> Alcotest.fail e);
  match A.Rules.select [ "R9" ] with
  | Ok _ -> Alcotest.fail "unknown rule accepted"
  | Error _ -> ()

let test_json_report () =
  let r = A.Driver.run [ fixture "r3_bad.ml" ] in
  let json = A.Driver.json_report r in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (go 0)
  in
  has {|"tool":"abftlint"|};
  has {|"rule":"R3"|};
  has {|"blocking":6|};
  has {|"files_checked":1|}

let test_json_escape () =
  Alcotest.(check string)
    "quotes and backslashes" {|a\"b\\c|}
    (A.Finding.json_escape {|a"b\c|});
  Alcotest.(check string) "newline" {|x\ny|} (A.Finding.json_escape "x\ny")

let test_syntax_error_reported () =
  let r = A.Driver.run [ fixture "../broken/unparsable.ml" ] in
  Alcotest.(check int) "parse error exits 2" 2 (A.Driver.exit_code r);
  Alcotest.(check int) "error recorded" 1 (List.length r.A.Driver.errors)

(* ------------------------------------------------------------------ *)
(* R6/R7/R8: whole-program dataflow over the fixture programs          *)
(* ------------------------------------------------------------------ *)

let run_fixture p = A.Driver.run [ fixture p ]

let locs rule_id (r : A.Driver.report) =
  List.map
    (fun f -> (f.A.Finding.line, f.A.Finding.col))
    (blocking (with_rule rule_id r.A.Driver.findings))

let test_r6_fixture_locations () =
  (* direct flow, tainted binding, and the cross-module helper (the
     source resolves through helpers.ml via the index) *)
  let r = run_fixture "r6" in
  Alcotest.(check (list (pair int int)))
    "R6 finding locations"
    [ (5, 25); (9, 2); (13, 2) ]
    (locs "R6" r)

let test_r6_twin_clean () =
  let r = run_fixture "r6_ok" in
  check_count "no blocking R6" 0
    (blocking (with_rule "R6" r.A.Driver.findings));
  check_count "the waived read is still reported" 1
    (with_rule "R6" r.A.Driver.findings);
  check_count "its waiver is not stale" 0
    (with_rule "W0" r.A.Driver.findings)

let test_r6_solver_fixture_locations () =
  (* the solver-scope extension: Blas2.*_alloc is a source and cg.ml is
     in scope, so both unverified matrix-vector-product reads flag *)
  let r = run_fixture "r6_solver" in
  Alcotest.(check (list (pair int int)))
    "R6 solver finding locations"
    [ (6, 24); (10, 2) ]
    (locs "R6" r)

let test_r6_solver_twin_clean () =
  (* residual_check is a sanitizer: mentioning the product clears its
     taint, and the deliberate read is waived without going stale *)
  let r = run_fixture "r6_solver_ok" in
  check_count "no blocking R6" 0
    (blocking (with_rule "R6" r.A.Driver.findings));
  check_count "the waived read is still reported" 1
    (with_rule "R6" r.A.Driver.findings);
  check_count "its waiver is not stale" 0
    (with_rule "W0" r.A.Driver.findings)

let test_r7_fixture_locations () =
  (* unbound start, never-stopped span, raise across an open span, a
     pool attachment without a Fun.protect restore, and a failwith-style
     cancellation bail-out crossing an open span *)
  let r = run_fixture "r7_bad.ml" in
  Alcotest.(check (list (pair int int)))
    "R7 finding locations"
    [ (6, 2); (10, 11); (14, 11); (19, 2); (25, 11) ]
    (locs "R7" r)

let test_r7_twin_clean () =
  let r = run_fixture "r7_ok.ml" in
  check_count "no R7 findings" 0 (with_rule "R7" r.A.Driver.findings)

let test_r8_fixture_locations () =
  (* unaccounted recovery raise; swallowed recovery exception *)
  let r = run_fixture "r8_bad.ml" in
  Alcotest.(check (list (pair int int)))
    "R8 finding locations"
    [ (5, 16); (9, 18) ]
    (locs "R8" r)

let test_r8_twin_clean () =
  (* the twin routes its accounting through a local helper, so a pass
     requires the index's stat-updater fixpoint *)
  let r = run_fixture "r8_ok.ml" in
  check_count "no R8 findings" 0 (with_rule "R8" r.A.Driver.findings)

(* ------------------------------------------------------------------ *)
(* Waiver scoping and the stale-waiver check                           *)
(* ------------------------------------------------------------------ *)

let test_waiver_nested_let () =
  let fs =
    lint
      {|let f x =
  let g = (List.hd x) [@abft.waive "fixture"] in
  g|}
  in
  check_count "no blocking findings" 0 (blocking fs);
  check_count "waived R3 still reported" 1 (with_rule "R3" fs);
  check_count "used waiver is not stale" 0 (with_rule "W0" fs)

let test_waiver_module_level () =
  let fs =
    lint {|[@@@abft.waive "fixture: whole-file"]

let f x = List.hd x|}
  in
  check_count "no blocking findings" 0 (blocking fs);
  check_count "waived R3 still reported" 1 (with_rule "R3" fs)

let test_stale_waiver_flagged () =
  let fs =
    lint {|let f x = (List.length x) [@abft.waive "nothing here"]|}
  in
  match with_rule "W0" fs with
  | [ f ] ->
      Alcotest.(check bool) "stale waiver blocks" true (A.Finding.is_blocking f);
      Alcotest.(check int) "line" 1 f.A.Finding.line
  | w0 -> Alcotest.failf "expected one W0 finding, got %d" (List.length w0)

let test_stale_waiver_gated_off () =
  (* under --rules a waiver's rule may simply be off, so W0 must not run *)
  let fs =
    lint
      ~rules:[ rule "R3" ]
      {|let f x = (List.length x) [@abft.waive "nothing here"]|}
  in
  check_count "no W0 under a rule subset" 0 (with_rule "W0" fs)

let test_unverified_answers_only_r2_r6 () =
  (* [@abft.unverified] must not suppress a banned-construct finding *)
  let fs =
    lint {|let f x = (List.hd x) [@abft.unverified "wrong attribute"]|}
  in
  check_count "R3 finding still blocking" 1 (blocking (with_rule "R3" fs))

(* ------------------------------------------------------------------ *)
(* R3 shadowing: a file's own [compare] is not the polymorphic one     *)
(* ------------------------------------------------------------------ *)

let test_r3_shadowed_compare_ok () =
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let compare a b = Float.compare a.x b.x

let sort l = List.sort compare l|}
  in
  check_count "shadowed compare not flagged" 0 fs

let test_r3_stdlib_compare_still_banned () =
  let fs =
    lint ~rules:[ rule "R3" ]
      {|let compare a b = Float.compare a.x b.x

let sort l = List.sort Stdlib.compare l|}
  in
  check_count "qualified Stdlib.compare still flagged" 1 (blocking fs)

(* ------------------------------------------------------------------ *)
(* R5 alias resolution                                                 *)
(* ------------------------------------------------------------------ *)

let test_r5_alias_resolved () =
  let fs =
    lint ~rules:[ rule "R5" ]
      {|module A = Array

let f a i = A.unsafe_get a i|}
  in
  match blocking fs with
  | [ f ] ->
      Alcotest.(check bool) "finding names the real module" true
        (let msg = f.A.Finding.message in
         let n = String.length "Array.unsafe_get" and h = String.length msg in
         let rec go i =
           i + n <= h
           && (String.sub msg i n = "Array.unsafe_get" || go (i + 1))
         in
         go 0)
  | fs -> Alcotest.failf "expected one R5 finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* Baseline: round-trip, demotion, stale entries                       *)
(* ------------------------------------------------------------------ *)

let test_baseline_roundtrip () =
  let r = A.Driver.run [ fixture "r3_bad.ml" ] in
  let path = Filename.temp_file "abftlint-baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      A.Baseline.save path r.A.Driver.findings;
      match A.Baseline.load path with
      | Error e -> Alcotest.fail e
      | Ok entries ->
          let demoted =
            A.Driver.run ~baseline:entries [ fixture "r3_bad.ml" ]
          in
          Alcotest.(check int) "baselined run exits 0" 0
            (A.Driver.exit_code demoted);
          check_count "no blocking left" 0
            (blocking demoted.A.Driver.findings);
          Alcotest.(check int) "all six demoted" 6
            (List.length
               (List.filter
                  (fun f -> f.A.Finding.baselined)
                  demoted.A.Driver.findings));
          check_count "no stale entries" 0 demoted.A.Driver.stale_baseline)

let test_baseline_stale_entry () =
  let entries =
    [ { A.Baseline.rule = "R3"; file = "ghost.ml"; message = "gone" } ]
  in
  let r = A.Driver.run ~baseline:entries [ fixture "clean.ml" ] in
  check_count "stale entry reported" 1 r.A.Driver.stale_baseline;
  Alcotest.(check int) "stale baseline is not an error" 0 (A.Driver.exit_code r)

(* ------------------------------------------------------------------ *)
(* Incremental cache                                                   *)
(* ------------------------------------------------------------------ *)

let test_cache_warm_run () =
  let dir = Filename.temp_file "abftlint-cache" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      let cold = A.Driver.run ~cache_dir:dir [ fixture "r3_bad.ml" ] in
      Alcotest.(check int) "cold run parses the file" 1
        cold.A.Driver.files_parsed;
      let warm = A.Driver.run ~cache_dir:dir [ fixture "r3_bad.ml" ] in
      Alcotest.(check int) "warm run re-parses nothing" 0
        warm.A.Driver.files_parsed;
      Alcotest.(check int) "same findings either way"
        (List.length cold.A.Driver.findings)
        (List.length warm.A.Driver.findings);
      let subset =
        A.Driver.run ~rules:[ rule "R3" ] ~cache_dir:dir
          [ fixture "r3_bad.ml" ]
      in
      Alcotest.(check int) "rule-set change misses the cache" 1
        subset.A.Driver.files_parsed)

(* ------------------------------------------------------------------ *)
(* SARIF export                                                        *)
(* ------------------------------------------------------------------ *)

let test_sarif_report () =
  let r = A.Driver.run [ fixture "r3_bad.ml" ] in
  let s = A.Driver.sarif_report r in
  let has needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (go 0)
  in
  has {|"$schema":"https://json.schemastore.org/sarif-2.1.0.json"|};
  has {|"version":"2.1.0"|};
  has {|"name":"abftlint"|};
  has {|"ruleId":"R3"|};
  has {|"level":"error"|};
  has {|"executionSuccessful":true|}

let test_sarif_suppressions () =
  (* a waived finding exports as a note with an in-source suppression *)
  let r = run_fixture "r6_ok" in
  let s = A.Driver.sarif_report r in
  let has needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (go 0)
  in
  has {|"level":"note"|};
  has {|"kind":"inSource"|}

let () =
  Alcotest.run "analysis"
    [
      ( "r1",
        [
          Alcotest.test_case "captured ref flagged" `Quick test_r1_captured_ref;
          Alcotest.test_case "disjoint index ok" `Quick test_r1_disjoint_index_ok;
          Alcotest.test_case "item-local state ok" `Quick test_r1_item_local_ok;
          Alcotest.test_case "constant index flagged" `Quick
            test_r1_constant_index_flagged;
          Alcotest.test_case "named closure resolved" `Quick
            test_r1_named_closure;
          Alcotest.test_case "waiver downgrades" `Quick test_r1_waiver;
          Alcotest.test_case "mutable field flagged" `Quick test_r1_setfield;
        ] );
      ( "r2",
        [
          Alcotest.test_case "unverified read flagged" `Quick
            test_r2_unverified_read;
          Alcotest.test_case "dominated read ok" `Quick test_r2_dominated_read_ok;
          Alcotest.test_case "out-of-scope file ok" `Quick
            test_r2_out_of_scope_file;
          Alcotest.test_case "waiver downgrades" `Quick test_r2_waiver;
        ] );
      ( "r3",
        [
          Alcotest.test_case "catch-all flagged" `Quick test_r3_catch_all;
          Alcotest.test_case "specific handler ok" `Quick
            test_r3_specific_handler_ok;
          Alcotest.test_case "banned idents" `Quick test_r3_banned_idents;
          Alcotest.test_case "float = flagged" `Quick test_r3_float_eq;
          Alcotest.test_case "<> fast path ok" `Quick
            test_r3_float_neq_fast_path_ok;
          Alcotest.test_case "typed compare ok" `Quick test_r3_typed_compare_ok;
          Alcotest.test_case "waiver downgrades" `Quick test_r3_waiver;
          Alcotest.test_case "shadowed compare ok" `Quick
            test_r3_shadowed_compare_ok;
          Alcotest.test_case "Stdlib.compare still banned" `Quick
            test_r3_stdlib_compare_still_banned;
        ] );
      ( "r4",
        [
          Alcotest.test_case "unbounded retry flagged" `Quick
            test_r4_unbounded_flagged;
          Alcotest.test_case "attempt param flagged" `Quick
            test_r4_param_name_flagged;
          Alcotest.test_case "bounded ok" `Quick test_r4_bounded_ok;
          Alcotest.test_case "record cap ok" `Quick test_r4_record_cap_ok;
          Alcotest.test_case "non-retry recursion ok" `Quick
            test_r4_non_retry_recursion_ok;
          Alcotest.test_case "while retry flagged" `Quick
            test_r4_while_flagged;
          Alcotest.test_case "while bounded ok" `Quick
            test_r4_while_bounded_ok;
          Alcotest.test_case "non-retry while ok" `Quick
            test_r4_non_retry_while_ok;
          Alcotest.test_case "while waiver downgrades" `Quick
            test_r4_while_waiver;
          Alcotest.test_case "waiver downgrades" `Quick test_r4_waiver;
        ] );
      ( "r5",
        [
          Alcotest.test_case "outside kernel flagged" `Quick
            test_r5_outside_kernel_flagged;
          Alcotest.test_case "kernel module ok" `Quick test_r5_kernel_module_ok;
          Alcotest.test_case "Mat accessor flagged" `Quick
            test_r5_mat_accessor_flagged;
          Alcotest.test_case "bare reference flagged" `Quick
            test_r5_bare_reference_flagged;
          Alcotest.test_case "safe access ok" `Quick test_r5_safe_access_ok;
          Alcotest.test_case "waiver downgrades" `Quick test_r5_waiver;
          Alcotest.test_case "alias resolved" `Quick test_r5_alias_resolved;
        ] );
      ( "r6",
        [
          Alcotest.test_case "fixture locations" `Quick
            test_r6_fixture_locations;
          Alcotest.test_case "twin clean" `Quick test_r6_twin_clean;
          Alcotest.test_case "solver fixture locations" `Quick
            test_r6_solver_fixture_locations;
          Alcotest.test_case "solver twin clean" `Quick
            test_r6_solver_twin_clean;
        ] );
      ( "r7",
        [
          Alcotest.test_case "fixture locations" `Quick
            test_r7_fixture_locations;
          Alcotest.test_case "twin clean" `Quick test_r7_twin_clean;
        ] );
      ( "r8",
        [
          Alcotest.test_case "fixture locations" `Quick
            test_r8_fixture_locations;
          Alcotest.test_case "twin clean" `Quick test_r8_twin_clean;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "nested let" `Quick test_waiver_nested_let;
          Alcotest.test_case "module level" `Quick test_waiver_module_level;
          Alcotest.test_case "stale waiver flagged" `Quick
            test_stale_waiver_flagged;
          Alcotest.test_case "stale check gated off" `Quick
            test_stale_waiver_gated_off;
          Alcotest.test_case "unverified answers only R2/R6" `Quick
            test_unverified_answers_only_r2_r6;
        ] );
      ( "driver",
        [
          Alcotest.test_case "fixtures fire" `Quick test_fixtures_fire;
          Alcotest.test_case "fixture counts" `Quick test_fixture_counts;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "exit codes" `Quick test_run_exit_codes;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "json report" `Quick test_json_report;
          Alcotest.test_case "json escape" `Quick test_json_escape;
          Alcotest.test_case "syntax error" `Quick test_syntax_error_reported;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "baseline stale entry" `Quick
            test_baseline_stale_entry;
          Alcotest.test_case "cache warm run" `Quick test_cache_warm_run;
          Alcotest.test_case "sarif report" `Quick test_sarif_report;
          Alcotest.test_case "sarif suppressions" `Quick
            test_sarif_suppressions;
        ] );
    ]
