(* Tests for the Cholesky drivers: configuration, the verification-set
   module, the numeric FT driver (including the paper's Table VII
   fault-capability matrix), the timing-mode schedule generator, the
   numeric/timing trace-equality contract, and the CULA baseline. *)

open Matrix
module C = Cholesky

let tb = Hetsim.Machine.testbench

let cfg ?(scheme = Abft.Scheme.enhanced ()) ?(block = 8) ?opt2 () =
  match opt2 with
  | None -> C.Config.make ~machine:tb ~block ~scheme ()
  | Some opt2 -> C.Config.make ~machine:tb ~block ~scheme ~opt2 ()

let spd n = Spd.random_spd ~seed:(n + 1000) n

let expect_outcome name want (r : C.Ft.report) =
  Alcotest.(check string) name want
    (Format.asprintf "%a" C.Ft.pp_outcome r.C.Ft.outcome
    |> String.split_on_char ':' |> List.hd)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_block_resolution () =
  let c = C.Config.make ~machine:Hetsim.Machine.tardis () in
  Alcotest.(check int) "machine default" 256 (C.Config.block_size c);
  let c = C.Config.make ~machine:Hetsim.Machine.tardis ~block:128 () in
  Alcotest.(check int) "explicit" 128 (C.Config.block_size c)

let test_config_validate () =
  Alcotest.(check bool) "default ok" true
    (Result.is_ok (C.Config.validate C.Config.default));
  Alcotest.(check bool) "bad tol" true
    (Result.is_error (C.Config.validate { C.Config.default with C.Config.tol = 0. }))

let test_config_placement_resolution () =
  (* The paper's §VII-D: CPU updating on tardis, GPU on bulldozer64. *)
  let resolve machine n =
    C.Config.resolve_placement (C.Config.make ~machine ()) ~n
  in
  Alcotest.(check bool) "tardis" true
    (resolve Hetsim.Machine.tardis 20480 = C.Config.Cpu_offload);
  Alcotest.(check bool) "bulldozer64" true
    (resolve Hetsim.Machine.bulldozer64 30720 = C.Config.Gpu_stream);
  (* Explicit placements pass through. *)
  Alcotest.(check bool) "explicit" true
    (C.Config.resolve_placement (cfg ~opt2:C.Config.Gpu_inline ()) ~n:64
    = C.Config.Gpu_inline)

let test_config_streams () =
  let c = C.Config.make ~machine:Hetsim.Machine.tardis () in
  Alcotest.(check int) "gpu limit" 16 (C.Config.effective_recalc_streams c);
  let c = C.Config.make ~machine:Hetsim.Machine.tardis ~opt1:false () in
  Alcotest.(check int) "opt1 off" 1 (C.Config.effective_recalc_streams c);
  let c = C.Config.make ~recalc_streams:4 () in
  Alcotest.(check int) "explicit" 4 (C.Config.effective_recalc_streams c)

(* ------------------------------------------------------------------ *)
(* Sets                                                                *)
(* ------------------------------------------------------------------ *)

let test_sets_existence () =
  Alcotest.(check bool) "no syrk at 0" false (C.Sets.syrk_exists ~j:0);
  Alcotest.(check bool) "syrk at 1" true (C.Sets.syrk_exists ~j:1);
  Alcotest.(check bool) "no gemm at 0" false (C.Sets.gemm_exists ~grid:4 ~j:0);
  Alcotest.(check bool) "no gemm at last" false (C.Sets.gemm_exists ~grid:4 ~j:3);
  Alcotest.(check bool) "gemm mid" true (C.Sets.gemm_exists ~grid:4 ~j:2);
  Alcotest.(check bool) "no trsm at last" false (C.Sets.trsm_exists ~grid:4 ~j:3)

let test_sets_contents () =
  Alcotest.(check (list (pair int int))) "pre_syrk"
    [ (2, 2); (2, 0); (2, 1) ] (C.Sets.pre_syrk ~j:2);
  Alcotest.(check (list (pair int int))) "pre_gemm grid=4 j=1"
    [ (2, 1); (3, 1); (2, 0); (3, 0) ]
    (C.Sets.pre_gemm ~grid:4 ~j:1);
  Alcotest.(check (list (pair int int))) "pre_trsm"
    [ (1, 1); (2, 1); (3, 1) ] (C.Sets.pre_trsm ~grid:4 ~j:1);
  Alcotest.(check int) "all_lower count" 10 (List.length (C.Sets.all_lower ~grid:4))

let test_sets_table1_scaling () =
  (* Table I: per iteration, Enhanced verifies O(1) blocks for POTF2,
     O(g) for TRSM and SYRK, O(g^2) for GEMM. *)
  let g = 20 and j = 10 in
  Alcotest.(check int) "potf2 O(1)" 1 (List.length (C.Sets.pre_potf2 ~j));
  Alcotest.(check int) "syrk O(g)" (j + 1) (List.length (C.Sets.pre_syrk ~j));
  Alcotest.(check int) "trsm O(g)" (g - j) (List.length (C.Sets.pre_trsm ~grid:g ~j));
  Alcotest.(check int) "gemm O(g^2)"
    ((g - 1 - j) * (j + 1))
    (List.length (C.Sets.pre_gemm ~grid:g ~j))

let test_sets_k_gate () =
  Alcotest.(check bool) "k=1 always" true (C.Sets.k_gate ~k:1 ~j:7);
  Alcotest.(check bool) "k=3 at 6" true (C.Sets.k_gate ~k:3 ~j:6);
  Alcotest.(check bool) "k=3 at 7" false (C.Sets.k_gate ~k:3 ~j:7)

(* ------------------------------------------------------------------ *)
(* Numeric driver: clean runs                                          *)
(* ------------------------------------------------------------------ *)

let test_ft_matches_lapack () =
  let a = spd 48 in
  let reference = Mat.copy a in
  Lapack.potrf ~block:8 Types.Lower reference;
  List.iter
    (fun scheme ->
      let r = C.Ft.factor (cfg ~scheme ()) a in
      Alcotest.(check bool)
        (Abft.Scheme.name scheme ^ " matches potrf")
        true
        (Mat.approx_equal ~tol:1e-8 reference r.C.Ft.factor);
      expect_outcome (Abft.Scheme.name scheme) "success" r)
    Abft.Scheme.all

let test_ft_clean_run_stats () =
  let a = spd 48 in
  let none = C.Ft.factor (cfg ~scheme:Abft.Scheme.No_ft ()) a in
  Alcotest.(check int) "no_ft verifies nothing" 0 none.C.Ft.stats.C.Ft.verifications;
  let online = C.Ft.factor (cfg ~scheme:Abft.Scheme.Online ()) a in
  let enhanced = C.Ft.factor (cfg ()) a in
  Alcotest.(check bool) "enhanced verifies more" true
    (enhanced.C.Ft.stats.C.Ft.verifications > online.C.Ft.stats.C.Ft.verifications);
  Alcotest.(check int) "no corrections needed" 0 enhanced.C.Ft.stats.C.Ft.corrections;
  Alcotest.(check int) "no restarts" 0 enhanced.C.Ft.stats.C.Ft.restarts

let test_ft_k_reduces_verifications () =
  let a = spd 64 in
  let v k =
    (C.Ft.factor (cfg ~scheme:(Abft.Scheme.enhanced ~k ()) ()) a)
      .C.Ft.stats.C.Ft.verifications
  in
  let v1 = v 1 and v3 = v 3 and v5 = v 5 in
  Alcotest.(check bool) "k=3 < k=1" true (v3 < v1);
  Alcotest.(check bool) "k=5 <= k=3" true (v5 <= v3)

let test_ft_input_validation () =
  Alcotest.(check bool) "non-multiple order" true
    (try
       ignore (C.Ft.factor (cfg ~block:7 ()) (spd 48));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "not square" true
    (try
       ignore (C.Ft.factor (cfg ()) (Spd.random ~seed:1 8 16));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Numeric driver: the Table VII capability matrix                     *)
(* ------------------------------------------------------------------ *)

(* A computing error in a GEMM output block, mid-factorization. *)
let computing_plan =
  [
    Fault.computing_error ~delta:5e3 ~iteration:2 ~op:Fault.Gemm ~block:(4, 2)
      ~element:(3, 5) ();
  ]

(* A storage error striking a factored panel block after its last
   verification and before its next read — the window the paper built
   Enhanced Online-ABFT for. Block (3,0) is TRSM output of iteration 0,
   flipped at the start of iteration 2, and read again by GEMM/SYRK. *)
let storage_plan =
  [ Fault.storage_error ~bit:52 ~iteration:2 ~block:(3, 0) ~element:(2, 2) () ]

(* A storage error after the block's LAST read: block (2,0) is read for
   the last time at iteration 2 (SYRK of row 2); the flip at iteration 4
   propagates nowhere — and is visible to no pre-read or post-update
   verification either. *)
let late_storage_plan =
  [ Fault.storage_error ~bit:52 ~iteration:4 ~block:(2, 0) ~element:(1, 3) () ]

let run6 scheme plan =
  (* grid 6: 48x48 with 8x8 tiles *)
  C.Ft.factor ~plan (cfg ~scheme ()) (spd 48)

let test_capability_offline_computing () =
  let r = run6 Abft.Scheme.Offline computing_plan in
  (* Detected at the final verification; recovered by recomputation. *)
  expect_outcome "offline recovers by redo" "success" r;
  Alcotest.(check int) "one restart" 1 r.C.Ft.stats.C.Ft.restarts

let test_capability_online_computing () =
  let r = run6 Abft.Scheme.Online computing_plan in
  expect_outcome "online corrects" "success" r;
  Alcotest.(check int) "no restart" 0 r.C.Ft.stats.C.Ft.restarts;
  Alcotest.(check bool) "corrected inline" true (r.C.Ft.stats.C.Ft.corrections > 0)

let test_capability_enhanced_computing () =
  let r = run6 (Abft.Scheme.enhanced ()) computing_plan in
  expect_outcome "enhanced corrects" "success" r;
  Alcotest.(check int) "no restart" 0 r.C.Ft.stats.C.Ft.restarts;
  Alcotest.(check bool) "corrected at next read" true
    (r.C.Ft.stats.C.Ft.corrections > 0)

let test_capability_offline_storage () =
  let r = run6 Abft.Scheme.Offline storage_plan in
  expect_outcome "offline recovers by redo" "success" r;
  Alcotest.(check int) "one restart" 1 r.C.Ft.stats.C.Ft.restarts

let test_capability_online_storage () =
  (* The paper's motivating failure: Online-ABFT verified block (3,0)
     after its update in iteration 0, so the later flip is never checked
     at its source. Depending on how it propagates it either persists
     silently or surfaces as an uncorrectable pattern downstream — both
     cost a full recomputation (Table VII's ~2x), never an inline fix.
     For this plan the downstream GEMM verification trips. *)
  let r = run6 Abft.Scheme.Online storage_plan in
  expect_outcome "recovers only by redoing" "success" r;
  Alcotest.(check int) "one restart (2x cost)" 1 r.C.Ft.stats.C.Ft.restarts

let test_capability_online_late_storage_silent () =
  (* When the flip does not propagate at all, Online has no chance to
     even notice: the classic silent corruption. *)
  let r = run6 Abft.Scheme.Online late_storage_plan in
  expect_outcome "silent" "silent corruption" r;
  Alcotest.(check int) "no restart (undetected)" 0 r.C.Ft.stats.C.Ft.restarts

let test_capability_enhanced_storage () =
  let r = run6 (Abft.Scheme.enhanced ()) storage_plan in
  expect_outcome "enhanced corrects before the read" "success" r;
  Alcotest.(check int) "no restart" 0 r.C.Ft.stats.C.Ft.restarts;
  Alcotest.(check bool) "corrected" true (r.C.Ft.stats.C.Ft.corrections > 0)

let test_capability_no_ft_silent () =
  (* Small enough not to destroy positive definiteness (which would
     fail-stop even plain MAGMA), large enough to pollute the result. *)
  let plan =
    [ Fault.computing_error ~delta:0.01 ~iteration:2 ~op:Fault.Gemm
        ~block:(4, 2) ~element:(3, 5) () ]
  in
  let r = run6 Abft.Scheme.No_ft plan in
  expect_outcome "plain magma is silently wrong" "silent corruption" r

let test_capability_no_ft_fail_stop () =
  (* A large computing error reaches the diagonal through SYRK and
     breaks positive definiteness: plain MAGMA fail-stops, and the only
     recourse is rerunning (which succeeds — the fault was transient). *)
  let r = run6 Abft.Scheme.No_ft computing_plan in
  expect_outcome "recovered by rerun" "success" r;
  Alcotest.(check bool) "fail-stopped" true (r.C.Ft.stats.C.Ft.fail_stops > 0)

let test_online_storage_fixed_by_final_sweep () =
  (* The repo's extension beyond the paper: a cheap end-of-run sweep
     lets even Online-ABFT locate and repair a non-propagating flip
     that would otherwise ship silently. *)
  let r = C.Ft.factor ~plan:late_storage_plan ~final_sweep:true
      (cfg ~scheme:Abft.Scheme.Online ()) (spd 48)
  in
  expect_outcome "final sweep repairs it" "success" r;
  Alcotest.(check int) "no restart" 0 r.C.Ft.stats.C.Ft.restarts;
  Alcotest.(check bool) "corrected" true (r.C.Ft.stats.C.Ft.corrections > 0)

let test_enhanced_late_storage_needs_sweep_too () =
  (* Honest limitation shared with the paper: pre-read verification can
     only protect data that is read again. A flip after the last read
     slips past Enhanced as well; the sweep extension closes the gap. *)
  let r = run6 (Abft.Scheme.enhanced ()) late_storage_plan in
  expect_outcome "enhanced misses it too" "silent corruption" r;
  let r = C.Ft.factor ~plan:late_storage_plan ~final_sweep:true (cfg ()) (spd 48) in
  expect_outcome "sweep closes the gap" "success" r

(* ------------------------------------------------------------------ *)
(* Fused vs separate pass structure                                    *)
(* ------------------------------------------------------------------ *)

let fused_cfg ?(scheme = Abft.Scheme.enhanced ()) fused =
  C.Config.make ~machine:tb ~block:8 ~scheme ~fused ()

let bitwise_equal a b =
  let m = Mat.rows a and n = Mat.cols a in
  Mat.rows b = m && Mat.cols b = n
  &&
  try
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        if
          Int64.bits_of_float (Mat.get a i j)
          <> Int64.bits_of_float (Mat.get b i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

let test_fused_factor_bitwise () =
  (* Fusion changes only the pass structure: the carried chains perform
     the same FP additions in the same order as the separate update
     passes, so clean-run factors must agree to the last bit — not just
     to tol — and the verification schedule must be unchanged. *)
  let a = spd 48 in
  List.iter
    (fun scheme ->
      let name = Abft.Scheme.name scheme in
      let sep = C.Ft.factor (fused_cfg ~scheme false) a in
      let fus = C.Ft.factor (fused_cfg ~scheme true) a in
      Alcotest.(check bool)
        (name ^ " factors bitwise equal")
        true
        (bitwise_equal sep.C.Ft.factor fus.C.Ft.factor);
      Alcotest.(check int)
        (name ^ " same verification count")
        sep.C.Ft.stats.C.Ft.verifications fus.C.Ft.stats.C.Ft.verifications)
    [ Abft.Scheme.Online; Abft.Scheme.enhanced (); Abft.Scheme.Offline ]

let test_fused_detection_parity () =
  (* Detection coverage is part of the fusion contract: the same fault
     plans must be caught and corrected whether the chains ride the
     kernels or run as separate passes. *)
  let check_plan name plan =
    List.iter
      (fun fused ->
        let tag = name ^ if fused then " fused" else " separate" in
        let r = C.Ft.factor ~plan (fused_cfg fused) (spd 48) in
        expect_outcome tag "success" r;
        Alcotest.(check int) (tag ^ " no restart") 0 r.C.Ft.stats.C.Ft.restarts;
        Alcotest.(check bool)
          (tag ^ " corrected")
          true
          (r.C.Ft.stats.C.Ft.corrections > 0))
      [ false; true ]
  in
  check_plan "computing" computing_plan;
  check_plan "storage" storage_plan

let test_fail_stop_recovery () =
  (* A sign flip on a diagonal element destroys positive definiteness:
     Offline-ABFT hits the fail-stop in POTF2 and must recompute. *)
  let plan =
    [ Fault.storage_error ~bit:63 ~iteration:3 ~block:(3, 3) ~element:(4, 4) () ]
  in
  let r = run6 Abft.Scheme.Offline plan in
  expect_outcome "recovered" "success" r;
  Alcotest.(check bool) "fail-stop recorded" true (r.C.Ft.stats.C.Ft.fail_stops > 0);
  Alcotest.(check int) "one restart" 1 r.C.Ft.stats.C.Ft.restarts;
  (* Enhanced verifies the diagonal before POTF2 reads it: no fail-stop. *)
  let r = run6 (Abft.Scheme.enhanced ()) plan in
  expect_outcome "enhanced avoids the fail-stop" "success" r;
  Alcotest.(check int) "no fail-stop" 0 r.C.Ft.stats.C.Ft.fail_stops;
  Alcotest.(check int) "no restart" 0 r.C.Ft.stats.C.Ft.restarts

let test_two_errors_same_column_recovers_by_restart () =
  let plan =
    [
      Fault.storage_error ~bit:52 ~iteration:2 ~block:(3, 0) ~element:(1, 4) ();
      Fault.storage_error ~bit:52 ~iteration:2 ~block:(3, 0) ~element:(6, 4) ();
    ]
  in
  let r = run6 (Abft.Scheme.enhanced ()) plan in
  expect_outcome "uncorrectable pattern -> redo" "success" r;
  Alcotest.(check int) "one restart" 1 r.C.Ft.stats.C.Ft.restarts

let test_potf2_computing_error_entangled () =
  (* A computing error in the POTF2 output corrupts the checksum update
     itself (Algorithm 2 consumes the corrupted factor), so it is
     detected but not locatable: recovery by recomputation. *)
  let plan =
    [
      Fault.computing_error ~delta:100. ~iteration:2 ~op:Fault.Potf2
        ~block:(2, 2) ~element:(5, 1) ();
    ]
  in
  let r = run6 (Abft.Scheme.enhanced ()) plan in
  expect_outcome "recovered" "success" r;
  Alcotest.(check int) "one restart" 1 r.C.Ft.stats.C.Ft.restarts

let test_enhanced_k3_storage_still_corrected () =
  (* With K = 3 the flip may slip past one gated window but is caught
     at the next verification of the block before the result ships. *)
  let r = run6 (Abft.Scheme.enhanced ~k:3 ()) storage_plan in
  expect_outcome "eventually corrected" "success" r

let test_gave_up () =
  (* Re-firing is impossible (transient), but a plan with max_restarts
     = 0 and an uncorrectable fault must report failure honestly. *)
  let c = { (cfg ~scheme:Abft.Scheme.Offline ()) with C.Config.max_restarts = 0 } in
  let r = C.Ft.factor ~plan:computing_plan c (spd 48) in
  match r.C.Ft.outcome with
  | C.Ft.Gave_up _ -> ()
  | o -> Alcotest.failf "expected gave up, got %a" C.Ft.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Right-looking variant ablation: why the paper uses inner-product    *)
(* ------------------------------------------------------------------ *)

let test_right_looking_matches_lapack () =
  let a = spd 48 in
  let reference = Mat.copy a in
  Lapack.potrf ~block:8 Types.Lower reference;
  List.iter
    (fun scheme ->
      let r = C.Right_looking.factor ~scheme ~block:8 a in
      expect_outcome (Abft.Scheme.name scheme) "success" r;
      Alcotest.(check bool)
        (Abft.Scheme.name scheme ^ " matches potrf")
        true
        (Mat.approx_equal ~tol:1e-8 reference r.C.Ft.factor))
    Abft.Scheme.all

let test_right_looking_misses_panel_storage_error () =
  (* THE ablation: the same flip that the inner-product driver corrects
     (test "enhanced + storage" above) ships silently under the
     right-looking order, because L(3,0) is never read after
     iteration 0. This is the fault-coverage reason to prefer MAGMA's
     inner-product variant. *)
  let r = C.Right_looking.factor ~plan:storage_plan ~block:8 (spd 48) in
  expect_outcome "right-looking is blind" "silent corruption" r;
  Alcotest.(check int) "nothing corrected" 0 r.C.Ft.stats.C.Ft.corrections

let test_right_looking_corrects_trailing_storage_error () =
  (* A flip on a tile still in the trailing submatrix is re-read by the
     next eager update and corrected. Tile (4,3) is trailing until
     iteration 3; flip at iteration 2. *)
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:2 ~block:(4, 3) ~element:(1, 1) () ]
  in
  let r = C.Right_looking.factor ~plan ~block:8 (spd 48) in
  expect_outcome "trailing flip corrected" "success" r;
  Alcotest.(check bool) "corrected" true (r.C.Ft.stats.C.Ft.corrections > 0)

let test_right_looking_corrects_computing_error () =
  (* Computing error in an eager update of a still-trailing tile. *)
  let plan =
    [
      Fault.computing_error ~delta:3e3 ~iteration:1 ~op:Fault.Gemm ~block:(4, 2)
        ~element:(2, 2) ();
    ]
  in
  let r = C.Right_looking.factor ~plan ~block:8 (spd 48) in
  expect_outcome "corrected at next read" "success" r;
  Alcotest.(check int) "no restart" 0 r.C.Ft.stats.C.Ft.restarts

(* ------------------------------------------------------------------ *)
(* Trace equality: numeric mode vs timing mode                         *)
(* ------------------------------------------------------------------ *)

let test_trace_equality () =
  let a = spd 48 in
  List.iter
    (fun scheme ->
      let c = cfg ~scheme () in
      let numeric = (C.Ft.factor c a).C.Ft.trace in
      let timing = (C.Schedule.run c ~n:48).C.Schedule.trace in
      match C.Trace_op.diff numeric timing with
      | None -> ()
      | Some (i, x, y) ->
          Alcotest.failf "%s: traces differ at %d: ft=%a schedule=%a"
            (Abft.Scheme.name scheme) i
            (Format.pp_print_option C.Trace_op.pp)
            x
            (Format.pp_print_option C.Trace_op.pp)
            y)
    (Abft.Scheme.all
    @ [ Abft.Scheme.Enhanced { k = 3 }; Abft.Scheme.Enhanced { k = 5 } ])

let test_trace_equality_other_placements () =
  let a = spd 40 in
  List.iter
    (fun opt2 ->
      let c = cfg ~opt2 () in
      let numeric = (C.Ft.factor c a).C.Ft.trace in
      let timing = (C.Schedule.run c ~n:40).C.Schedule.trace in
      Alcotest.(check bool) "equal" true (C.Trace_op.equal numeric timing))
    [ C.Config.Gpu_inline; C.Config.Gpu_stream; C.Config.Cpu_offload ]

(* ------------------------------------------------------------------ *)
(* Schedule (timing mode)                                              *)
(* ------------------------------------------------------------------ *)

let tardis_cfg scheme = C.Config.make ~machine:Hetsim.Machine.tardis ~scheme ()

let test_schedule_scheme_ordering () =
  let t scheme = (C.Schedule.run (tardis_cfg scheme) ~n:8192).C.Schedule.makespan in
  let none = t Abft.Scheme.No_ft in
  let offline = t Abft.Scheme.Offline in
  let online = t Abft.Scheme.Online in
  let enhanced = t (Abft.Scheme.enhanced ()) in
  Alcotest.(check bool) "offline > none" true (offline > none);
  Alcotest.(check bool) "online >= offline" true (online >= offline);
  Alcotest.(check bool) "enhanced > online" true (enhanced > online);
  (* The paper's headline: Enhanced costs only a few percent. *)
  Alcotest.(check bool) "enhanced within 15% of magma" true
    (enhanced < none *. 1.15)

let test_schedule_k_reduces_time () =
  let t k =
    (C.Schedule.run (tardis_cfg (Abft.Scheme.enhanced ~k ())) ~n:8192)
      .C.Schedule.makespan
  in
  Alcotest.(check bool) "k=3 < k=1" true (t 3 < t 1);
  Alcotest.(check bool) "k=5 < k=3" true (t 5 < t 3)

let test_schedule_opt1_helps () =
  let t opt1 =
    (C.Schedule.run
       (C.Config.make ~machine:Hetsim.Machine.bulldozer64
          ~scheme:(Abft.Scheme.enhanced ()) ~opt1 ())
       ~n:16384)
      .C.Schedule.makespan
  in
  Alcotest.(check bool) "opt1 faster" true (t true < t false)

let test_schedule_opt2_helps () =
  let t opt2 =
    (C.Schedule.run
       (C.Config.make ~machine:Hetsim.Machine.tardis
          ~scheme:(Abft.Scheme.enhanced ()) ~opt2 ())
       ~n:8192)
      .C.Schedule.makespan
  in
  Alcotest.(check bool) "offloaded updating faster than inline" true
    (t C.Config.Cpu_offload < t C.Config.Gpu_inline)

let test_schedule_faults () =
  let c = tardis_cfg (Abft.Scheme.enhanced ()) in
  let clean = C.Schedule.run c ~n:4096 in
  Alcotest.(check int) "no reruns" 0 clean.C.Schedule.reruns;
  (* Correctable: storage error under Enhanced. *)
  let r = C.Schedule.run ~plan:storage_plan c ~n:4096 in
  Alcotest.(check int) "corrected, no rerun" 0 r.C.Schedule.reruns;
  (* Uncorrected: storage under Online forces a second pass (~2x). *)
  let c_online = tardis_cfg Abft.Scheme.Online in
  let clean_online = C.Schedule.run c_online ~n:4096 in
  let r = C.Schedule.run ~plan:storage_plan c_online ~n:4096 in
  Alcotest.(check int) "rerun" 1 r.C.Schedule.reruns;
  let ratio = r.C.Schedule.makespan /. clean_online.C.Schedule.makespan in
  Alcotest.(check bool) "about 2x" true (ratio > 1.9 && ratio < 2.1)

let test_schedule_uncorrected_classification () =
  let open Abft.Scheme in
  let storage = storage_plan and computing = computing_plan in
  Alcotest.(check int) "enhanced absorbs storage" 0
    (List.length (C.Schedule.uncorrected (enhanced ()) storage));
  Alcotest.(check int) "online misses storage" 1
    (List.length (C.Schedule.uncorrected Online storage));
  Alcotest.(check int) "online absorbs computing" 0
    (List.length (C.Schedule.uncorrected Online computing));
  Alcotest.(check int) "offline misses computing" 1
    (List.length (C.Schedule.uncorrected Offline computing));
  let potf2_err =
    [ Fault.computing_error ~iteration:1 ~op:Fault.Potf2 ~block:(1, 1)
        ~element:(0, 0) () ]
  in
  Alcotest.(check int) "potf2 entanglement" 1
    (List.length (C.Schedule.uncorrected (enhanced ()) potf2_err))

let test_schedule_phases_accounted () =
  let r = C.Schedule.run (tardis_cfg (Abft.Scheme.enhanced ())) ~n:4096 in
  let e = r.C.Schedule.engine in
  Alcotest.(check bool) "compute time dominates" true
    (Hetsim.Engine.phase_time e "compute" > Hetsim.Engine.phase_time e "chk-recalc");
  Alcotest.(check bool) "recalc accounted" true
    (Hetsim.Engine.phase_time e "chk-recalc" > 0.);
  Alcotest.(check bool) "update accounted" true
    (Hetsim.Engine.phase_time e "chk-update" > 0.);
  Alcotest.(check bool) "encode accounted" true
    (Hetsim.Engine.phase_time e "chk-encode" > 0.)

let test_schedule_input_validation () =
  Alcotest.(check bool) "n not multiple" true
    (try
       ignore (C.Schedule.run (tardis_cfg Abft.Scheme.No_ft) ~n:1000);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* LC-panel prefetch accounting (§VI 6b, CPU placement)                *)
(* ------------------------------------------------------------------ *)

(* A link slow enough that one block copy dwarfs every kernel, so the
   prefetch pipelining (and any accounting slip) is decisively visible
   in the record timeline rather than hidden inside compute time. *)
let slow_link_tb =
  {
    tb with
    Hetsim.Machine.name = "testbench-slowlink";
    link = { Hetsim.Machine.bandwidth_gbs = 1e-3; latency_s = 0. };
  }

let lc_b = 8

let lc_run g =
  let c =
    C.Config.make ~machine:slow_link_tb ~block:lc_b
      ~scheme:(Abft.Scheme.enhanced ()) ~opt2:C.Config.Cpu_offload ()
  in
  C.Schedule.run c ~n:(g * lc_b)

let lc_d2h_records g =
  List.filter
    (fun r ->
      r.Hetsim.Engine.phase = "chk-transfer"
      && r.Hetsim.Engine.resource = Some Hetsim.Engine.Link_d2h)
    (Hetsim.Engine.records (lc_run g).C.Schedule.engine)

(* Brute-force enumeration: block L(i,k), i > k, becomes host-resident
   exactly once — in iteration k's priority copy when i = k+1 (it is
   the next iteration's LC row) or in its bulk copy when i >= k+2. The
   full d2h sequence is therefore the initial checksum download
   followed, per panel iteration k = 0..g-2, by one one-block priority
   copy and one (g-2-k)-block bulk copy when that set is non-empty. *)
let lc_oracle g =
  let block_bytes = 8 * lc_b * lc_b in
  let init = g * (g + 1) / 2 * 2 * lc_b * 8 in
  let per_iter k =
    if g - 1 - k > 0 then
      block_bytes
      :: (if g - 2 - k > 0 then [ (g - 2 - k) * block_bytes ] else [])
    else []
  in
  init :: List.concat (List.init g per_iter)

let test_lc_prefetch_movement_sets () =
  List.iter
    (fun g ->
      let got =
        List.map
          (fun r ->
            Scanf.sscanf r.Hetsim.Engine.label "d2h %dB" (fun b -> b))
          (lc_d2h_records g)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "g=%d ships exactly the enumerated blocks" g)
        (lc_oracle g) got)
    [ 1; 2; 3 ]

(* The iteration accounting itself: at iteration j the checksum updates
   gate on the panel history through j-2 plus the j-1 *priority* block
   only. On the g=3 grid that means an update must run after P0 has
   landed but while B0 (the L(2,0) block, first needed at iteration 2)
   is still in flight — and the iteration-2 updates must wait for the
   complete history {P0, B0, P1}. *)
let test_lc_prefetch_iteration_windows () =
  let r = lc_run 3 in
  let records = Hetsim.Engine.records r.C.Schedule.engine in
  let d2h =
    List.filter
      (fun r ->
        r.Hetsim.Engine.phase = "chk-transfer"
        && r.Hetsim.Engine.resource = Some Hetsim.Engine.Link_d2h)
      records
  in
  match d2h with
  | [ _init; p0; b0; p1 ] ->
      Alcotest.(check bool) "priority block ships before the bulk" true
        (p0.Hetsim.Engine.start <= b0.Hetsim.Engine.start);
      let updates =
        List.filter (fun r -> r.Hetsim.Engine.phase = "chk-update") records
      in
      Alcotest.(check bool) "updates exist" true (updates <> []);
      let exists p = List.exists p updates in
      Alcotest.(check bool)
        "an update runs after P0 but while B0 is still in flight" true
        (exists (fun u ->
             u.Hetsim.Engine.start >= p0.Hetsim.Engine.finish
             && u.Hetsim.Engine.start < b0.Hetsim.Engine.finish));
      Alcotest.(check bool)
        "the final iteration's update waited for the whole history" true
        (exists (fun u -> u.Hetsim.Engine.start >= p1.Hetsim.Engine.finish))
  | rs ->
      Alcotest.failf "expected 4 d2h chk-transfers on g=3, got %d"
        (List.length rs)

(* ------------------------------------------------------------------ *)
(* Adaptive trailing-update balancing                                  *)
(* ------------------------------------------------------------------ *)

let gpu_storm_tb =
  Hetsim.Machine.with_reliability
    ~gpu:
      {
        Hetsim.Device.transient_fault_rate = 0.4;
        hang_rate = 0.05;
        hang_timeout_s = 0.005;
        transfer_corruption_rate = 0.;
        dropout_after_s = infinity;
        faults_until_s = infinity;
      }
    tb

let balance_run ?(machine = tb) ?policy ?(seed = 5) ?balance n =
  let c =
    match balance with
    | None -> C.Config.make ~machine ~block:8 ~scheme:(Abft.Scheme.enhanced ()) ()
    | Some balance ->
        C.Config.make ~machine ~block:8
          ~scheme:(Abft.Scheme.enhanced ())
          ~balance ()
  in
  C.Schedule.run ?policy ~fault_seed:seed c ~n

(* On a clean machine the balancer's efficiency estimates never leave
   their 1.0 fixpoint, so the adaptive schedule must be the static one
   bitwise — same makespan, same trace, zero resplits. *)
let test_balance_clean_adaptive_equals_static () =
  let stat = balance_run ~balance:Hetsim.Load_balancer.Static 128 in
  let adapt = balance_run ~balance:Hetsim.Load_balancer.Adaptive 128 in
  Alcotest.(check bool) "clean adaptive = static makespan, bitwise" true
    (Float.equal adapt.C.Schedule.makespan stat.C.Schedule.makespan);
  Alcotest.(check bool) "identical trace" true
    (adapt.C.Schedule.trace = stat.C.Schedule.trace);
  Alcotest.(check int) "zero resplits" 0
    adapt.C.Schedule.resilience.Hetsim.Resilient.resplits

(* Seeded determinism of the adaptive split (satellite): the balancer
   draws no randomness of its own, so a (machine, seed) pair pins the
   whole trajectory — makespan, resilience accounting and the traced
   Rebalance ops — bit-for-bit across repeated runs. *)
let test_balance_adaptive_deterministic () =
  let run () =
    balance_run ~machine:gpu_storm_tb ~balance:Hetsim.Load_balancer.Adaptive
      256
  in
  let r1 = run () in
  let r2 = run () in
  Alcotest.(check bool) "same seed, bit-identical makespan" true
    (Float.equal r1.C.Schedule.makespan r2.C.Schedule.makespan);
  Alcotest.(check bool) "same seed, identical resilience stats" true
    (r1.C.Schedule.resilience = r2.C.Schedule.resilience);
  Alcotest.(check bool) "same seed, identical split trajectory" true
    (r1.C.Schedule.trace = r2.C.Schedule.trace);
  let r3 =
    balance_run ~machine:gpu_storm_tb ~seed:6
      ~balance:Hetsim.Load_balancer.Adaptive 256
  in
  Alcotest.(check bool) "different seed, different timeline" true
    (not (Float.equal r1.C.Schedule.makespan r3.C.Schedule.makespan))

(* Under a sustained GPU storm the adaptive split must actually move
   (>= 1 applied resplit) and never lose to the frozen static split by
   more than the soak band. *)
let test_balance_storm_band () =
  let policy =
    {
      Hetsim.Resilient.default_policy with
      Hetsim.Resilient.reprobe_after_s = 0.05;
    }
  in
  let run balance =
    balance_run ~machine:gpu_storm_tb ~policy ~seed:3 ~balance 256
  in
  let stat = run Hetsim.Load_balancer.Static in
  let adapt = run Hetsim.Load_balancer.Adaptive in
  Alcotest.(check bool) "adaptive within 10% of static under the storm" true
    (adapt.C.Schedule.makespan <= stat.C.Schedule.makespan *. 1.1);
  Alcotest.(check bool) "at least one resplit applied" true
    (adapt.C.Schedule.resilience.Hetsim.Resilient.resplits >= 1)

(* Balancing is a timing-mode policy: carrying it in the config must
   not perturb the numeric driver, whose factors stay bitwise identical
   across domain counts (the ABFT_DOMAINS=1/2 contract). *)
let test_balance_numeric_domain_invariant () =
  let a = spd 32 in
  let c =
    {
      (cfg ()) with
      C.Config.balance = Some Hetsim.Load_balancer.Adaptive;
    }
  in
  let factor_with domains =
    let pool = Parallel.Pool.create ~domains () in
    let r = C.Ft.factor ~pool c a in
    Parallel.Pool.shutdown pool;
    r.C.Ft.factor
  in
  let f1 = factor_with 1 in
  let f2 = factor_with 2 in
  Alcotest.(check bool) "factors bitwise identical across domain counts" true
    (bitwise_equal f1 f2)

(* ------------------------------------------------------------------ *)
(* High-level solver with iterative refinement                          *)
(* ------------------------------------------------------------------ *)

let test_solve_basic () =
  let a = spd 48 in
  let x_true = Spd.random ~seed:61 48 2 in
  let b = Blas3.gemm_alloc a x_true in
  let t = C.Solve.factorize a in
  let x, stats = C.Solve.solve t b in
  Alcotest.(check bool) "accurate" true (Mat.approx_equal ~tol:1e-8 x_true x);
  Alcotest.(check bool) "residual tiny" true
    (stats.C.Solve.final_residual < 1e-13)

let test_solve_refinement_improves () =
  (* On an ill-conditioned system, refinement must not make things
     worse and normally tightens the residual. *)
  let a = Spd.random_spd_cond ~seed:62 ~cond:1e10 48 in
  let b = Spd.random ~seed:63 48 1 in
  let t = C.Solve.factorize a in
  let _, s0 = C.Solve.solve ~refine:0 t b in
  let _, s2 = C.Solve.solve ~refine:3 t b in
  Alcotest.(check bool) "no worse" true
    (s2.C.Solve.final_residual <= s0.C.Solve.final_residual +. 1e-16)

let test_solve_early_stop () =
  let a = spd 32 in
  let b = Spd.random ~seed:64 32 1 in
  let t = C.Solve.factorize a in
  let _, stats = C.Solve.solve ~refine:10 t b in
  (* a well-conditioned system converges immediately *)
  Alcotest.(check bool) "stops early" true (stats.C.Solve.iterations < 3)

let test_solve_with_faults () =
  let a = spd 48 in
  let x_true = Spd.random ~seed:65 48 1 in
  let b = Blas3.gemm_alloc a x_true in
  let t = C.Solve.factorize ~plan:storage_plan ~cfg:(cfg ()) a in
  Alcotest.(check bool) "fault absorbed" true
    ((C.Solve.report t).C.Ft.stats.C.Ft.corrections > 0);
  let x, _ = C.Solve.solve t b in
  Alcotest.(check bool) "accurate" true (Mat.approx_equal ~tol:1e-7 x_true x)

let test_solve_vec () =
  let a = spd 24 in
  let x_true = Array.init 24 (fun i -> float_of_int (i + 1)) in
  let b = Matrix.Blas2.gemv_alloc a x_true in
  let t = C.Solve.factorize a in
  let x, _ = C.Solve.solve_vec t b in
  Alcotest.(check bool) "vector solve" true
    (Matrix.Vec.approx_equal ~tol:1e-8 x_true x)

let test_solve_validation () =
  let t = C.Solve.factorize (spd 24) in
  Alcotest.(check bool) "bad rhs" true
    (try
       ignore (C.Solve.solve t (Mat.create 10 1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad refine" true
    (try
       ignore (C.Solve.solve ~refine:(-1) t (Mat.create 24 1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* CULA baseline                                                       *)
(* ------------------------------------------------------------------ *)

let test_cula_slower_than_magma () =
  List.iter
    (fun (machine, n) ->
      let magma =
        (C.Schedule.run (C.Config.make ~machine ~scheme:Abft.Scheme.No_ft ()) ~n)
          .C.Schedule.makespan
      in
      let enhanced =
        (C.Schedule.run
           (C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ())
           ~n)
          .C.Schedule.makespan
      in
      let cula = (C.Cula_model.run machine ~n).C.Cula_model.makespan in
      (* Figures 16/17 ordering: MAGMA > Enhanced > CULA (time-wise
         inverted). *)
      Alcotest.(check bool) "magma < enhanced" true (magma < enhanced);
      Alcotest.(check bool) "enhanced < cula" true (enhanced < cula))
    [ (Hetsim.Machine.tardis, 10240); (Hetsim.Machine.bulldozer64, 10240) ]

let test_cula_validation () =
  Alcotest.(check bool) "bad derate" true
    (try
       ignore (C.Cula_model.run ~derate:0. Hetsim.Machine.tardis ~n:1024);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_ft_random_fault_storms =
  QCheck.Test.make ~name:"enhanced k=1 survives random fault storms" ~count:25
    QCheck.(int_range 0 10000)
    (fun seed ->
      let grid = 5 and block = 6 in
      let n = grid * block in
      (* Computing errors anywhere but POTF2 (entangled, still recovers
         but costs a restart), storage errors early enough to be
         re-read before the run ends. *)
      let plan =
        Fault.random_plan ~seed ~grid ~block ~count:3 ~storage_fraction:0.5 ()
        |> List.filter (fun (inj : Fault.injection) ->
               match inj.Fault.window with
               | Fault.In_computation Fault.Potf2 -> false
               | Fault.In_computation _ -> true
               | Fault.In_storage | Fault.In_device ->
                   (* keep flips that strike blocks still to be read:
                      block (i, c) is last read at iteration i *)
                   let i, _ = inj.Fault.block in
                   inj.Fault.iteration <= i
               | Fault.In_checksum | Fault.In_update _ ->
                   true (* the self-protecting store heals these *)
               | Fault.In_solver _ -> false)
      in
      let a = Spd.random_spd ~seed:(seed + 77) n in
      let r = C.Ft.factor ~plan (cfg ~block ()) a in
      r.C.Ft.outcome = C.Ft.Success)

let prop_schedule_monotonic_in_n =
  QCheck.Test.make ~name:"makespan grows with n" ~count:20
    QCheck.(int_range 2 20)
    (fun g ->
      let c = tardis_cfg (Abft.Scheme.enhanced ()) in
      let t n = (C.Schedule.run c ~n).C.Schedule.makespan in
      t (256 * g) < t (256 * (g + 1)))

let prop_trace_equality_random =
  QCheck.Test.make ~name:"numeric and timing traces agree" ~count:20
    QCheck.(pair (int_range 2 6) (int_range 1 4))
    (fun (grid, k) ->
      let block = 4 in
      let n = grid * block in
      let c = cfg ~block ~scheme:(Abft.Scheme.enhanced ~k ()) () in
      let a = Spd.random_spd ~seed:(grid + (10 * k)) n in
      let numeric = (C.Ft.factor c a).C.Ft.trace in
      let timing = (C.Schedule.run c ~n).C.Schedule.trace in
      C.Trace_op.equal numeric timing)

let prop_single_correctable_fault_never_restarts =
  QCheck.Test.make ~name:"one gemm computing error never restarts enhanced"
    ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let grid = 6 and block = 5 in
      let j = 1 + Random.State.int st (grid - 2) in
      let i = j + 1 + Random.State.int st (grid - 1 - j) in
      let plan =
        [
          Fault.computing_error
            ~delta:(10. +. Random.State.float st 1e5)
            ~iteration:j ~op:Fault.Gemm ~block:(i, j)
            ~element:(Random.State.int st block, Random.State.int st block)
            ();
        ]
      in
      let a = Spd.random_spd ~seed:(seed + 31) (grid * block) in
      let r = C.Ft.factor ~plan (cfg ~block ()) a in
      r.C.Ft.outcome = C.Ft.Success && r.C.Ft.stats.C.Ft.restarts = 0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ft_random_fault_storms;
      prop_schedule_monotonic_in_n;
      prop_trace_equality_random;
      prop_single_correctable_fault_never_restarts;
    ]

let () =
  Alcotest.run "cholesky"
    [
      ( "config",
        [
          Alcotest.test_case "block resolution" `Quick test_config_block_resolution;
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "placement resolution" `Quick
            test_config_placement_resolution;
          Alcotest.test_case "streams" `Quick test_config_streams;
        ] );
      ( "sets",
        [
          Alcotest.test_case "existence" `Quick test_sets_existence;
          Alcotest.test_case "contents" `Quick test_sets_contents;
          Alcotest.test_case "Table I scaling" `Quick test_sets_table1_scaling;
          Alcotest.test_case "k gate" `Quick test_sets_k_gate;
        ] );
      ( "ft_clean",
        [
          Alcotest.test_case "matches lapack" `Quick test_ft_matches_lapack;
          Alcotest.test_case "stats" `Quick test_ft_clean_run_stats;
          Alcotest.test_case "k reduces verifications" `Quick
            test_ft_k_reduces_verifications;
          Alcotest.test_case "input validation" `Quick test_ft_input_validation;
        ] );
      ( "table7_capability",
        [
          Alcotest.test_case "offline + computing" `Quick
            test_capability_offline_computing;
          Alcotest.test_case "online + computing" `Quick
            test_capability_online_computing;
          Alcotest.test_case "enhanced + computing" `Quick
            test_capability_enhanced_computing;
          Alcotest.test_case "offline + storage" `Quick
            test_capability_offline_storage;
          Alcotest.test_case "online + storage (paper's gap)" `Quick
            test_capability_online_storage;
          Alcotest.test_case "online + late storage silent" `Quick
            test_capability_online_late_storage_silent;
          Alcotest.test_case "enhanced + storage" `Quick
            test_capability_enhanced_storage;
          Alcotest.test_case "no_ft silent" `Quick test_capability_no_ft_silent;
          Alcotest.test_case "no_ft fail-stop" `Quick
            test_capability_no_ft_fail_stop;
          Alcotest.test_case "online + sweep extension" `Quick
            test_online_storage_fixed_by_final_sweep;
          Alcotest.test_case "enhanced + late storage" `Quick
            test_enhanced_late_storage_needs_sweep_too;
          Alcotest.test_case "fail-stop recovery" `Quick test_fail_stop_recovery;
          Alcotest.test_case "two errors, one column" `Quick
            test_two_errors_same_column_recovers_by_restart;
          Alcotest.test_case "potf2 entanglement" `Quick
            test_potf2_computing_error_entangled;
          Alcotest.test_case "enhanced k=3 storage" `Quick
            test_enhanced_k3_storage_still_corrected;
          Alcotest.test_case "gave up" `Quick test_gave_up;
        ] );
      ( "fused",
        [
          Alcotest.test_case "factors bitwise = separate" `Quick
            test_fused_factor_bitwise;
          Alcotest.test_case "detection parity" `Quick
            test_fused_detection_parity;
        ] );
      ( "right_looking",
        [
          Alcotest.test_case "matches lapack" `Quick
            test_right_looking_matches_lapack;
          Alcotest.test_case "misses panel storage error (the ablation)" `Quick
            test_right_looking_misses_panel_storage_error;
          Alcotest.test_case "corrects trailing storage error" `Quick
            test_right_looking_corrects_trailing_storage_error;
          Alcotest.test_case "corrects computing error" `Quick
            test_right_looking_corrects_computing_error;
        ] );
      ( "trace",
        [
          Alcotest.test_case "numeric = timing (all schemes)" `Quick
            test_trace_equality;
          Alcotest.test_case "numeric = timing (placements)" `Quick
            test_trace_equality_other_placements;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "scheme ordering" `Quick test_schedule_scheme_ordering;
          Alcotest.test_case "k reduces time" `Quick test_schedule_k_reduces_time;
          Alcotest.test_case "opt1 helps" `Quick test_schedule_opt1_helps;
          Alcotest.test_case "opt2 helps" `Quick test_schedule_opt2_helps;
          Alcotest.test_case "fault accounting" `Quick test_schedule_faults;
          Alcotest.test_case "uncorrected classification" `Quick
            test_schedule_uncorrected_classification;
          Alcotest.test_case "phase accounting" `Quick
            test_schedule_phases_accounted;
          Alcotest.test_case "input validation" `Quick
            test_schedule_input_validation;
        ] );
      ( "lc-prefetch",
        [
          Alcotest.test_case "movement sets = brute-force enumeration" `Quick
            test_lc_prefetch_movement_sets;
          Alcotest.test_case "j-2/j-1 iteration windows" `Quick
            test_lc_prefetch_iteration_windows;
        ] );
      ( "balance",
        [
          Alcotest.test_case "clean adaptive = static" `Quick
            test_balance_clean_adaptive_equals_static;
          Alcotest.test_case "seeded determinism" `Quick
            test_balance_adaptive_deterministic;
          Alcotest.test_case "storm band and resplits" `Quick
            test_balance_storm_band;
          Alcotest.test_case "numeric factors domain-invariant" `Quick
            test_balance_numeric_domain_invariant;
        ] );
      ( "solve",
        [
          Alcotest.test_case "basic" `Quick test_solve_basic;
          Alcotest.test_case "refinement improves" `Quick
            test_solve_refinement_improves;
          Alcotest.test_case "early stop" `Quick test_solve_early_stop;
          Alcotest.test_case "with faults" `Quick test_solve_with_faults;
          Alcotest.test_case "vector" `Quick test_solve_vec;
          Alcotest.test_case "validation" `Quick test_solve_validation;
        ] );
      ( "cula",
        [
          Alcotest.test_case "ordering vs magma/enhanced" `Quick
            test_cula_slower_than_magma;
          Alcotest.test_case "validation" `Quick test_cula_validation;
        ] );
      ("properties", props);
    ]
