(* Tests for the extension modules: the K auto-tuner and the DMR/TMR
   redundancy baselines. *)

module C = Cholesky

let check_float = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Ktuner                                                              *)
(* ------------------------------------------------------------------ *)

let linear_cost k = 1.0 /. float_of_int k
(* a toy verification cost: 1s at K=1, 1/k thereafter *)

let test_ktuner_zero_rate_prefers_large_k () =
  let e =
    Abft.Ktuner.optimal_k ~base_s:10. ~verify_cost_s:linear_cost ~error_rate:0.
      ()
  in
  Alcotest.(check int) "k = k_max" 16 e.Abft.Ktuner.k

let test_ktuner_high_rate_prefers_k1 () =
  let e =
    Abft.Ktuner.optimal_k ~base_s:10. ~verify_cost_s:linear_cost ~error_rate:10.
      ()
  in
  Alcotest.(check int) "k = 1" 1 e.Abft.Ktuner.k

let test_ktuner_monotone_in_rate () =
  (* The optimal K never increases as the failure rate grows. *)
  let k_at rate =
    (Abft.Ktuner.optimal_k ~base_s:10. ~verify_cost_s:linear_cost
       ~error_rate:rate ())
      .Abft.Ktuner.k
  in
  let rates = [ 0.; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. ] in
  let ks = List.map k_at rates in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (non_increasing ks)

let test_ktuner_expected_time_formula () =
  let e =
    Abft.Ktuner.expected_time ~base_s:10. ~verify_cost_s:linear_cost
      ~error_rate:0.01 2
  in
  check_float "fault-free" 10.5 e.Abft.Ktuner.fault_free_s;
  (* E = T (1 + rate * T * (k-1)/k * r) = 10.5 * (1 + 0.01*10.5*0.5) *)
  check_float "expected" (10.5 *. (1. +. (0.01 *. 10.5 *. 0.5)))
    e.Abft.Ktuner.expected_s

let test_ktuner_k1_never_pays_recovery () =
  let e =
    Abft.Ktuner.expected_time ~base_s:10. ~verify_cost_s:linear_cost
      ~error_rate:100. 1
  in
  check_float "no slip at k=1" e.Abft.Ktuner.fault_free_s e.Abft.Ktuner.expected_s

let test_ktuner_validation () =
  Alcotest.(check bool) "bad k" true
    (try
       ignore
         (Abft.Ktuner.expected_time ~base_s:1. ~verify_cost_s:linear_cost
            ~error_rate:0. 0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad rate" true
    (try
       ignore
         (Abft.Ktuner.expected_time ~base_s:1. ~verify_cost_s:linear_cost
            ~error_rate:(-1.) 1);
       false
     with Invalid_argument _ -> true)

let test_ktuner_cost_model_decreases_in_k () =
  let cost =
    Abft.Ktuner.verify_cost_model ~machine:Hetsim.Machine.tardis ~n:20480
      ~b:256 ~streams:16
  in
  Alcotest.(check bool) "k=1 > k=3" true (cost 1 > cost 3);
  Alcotest.(check bool) "k=3 > k=5" true (cost 3 > cost 5);
  Alcotest.(check bool) "positive" true (cost 16 > 0.)

(* ------------------------------------------------------------------ *)
(* Redundancy                                                          *)
(* ------------------------------------------------------------------ *)

let test_dmr_overhead () =
  let r = C.Redundancy.dmr Hetsim.Machine.tardis ~n:8192 in
  Alcotest.(check bool) "about +100%" true
    (r.C.Redundancy.overhead_vs_plain > 0.99
    && r.C.Redundancy.overhead_vs_plain < 1.1)

let test_dmr_faulty_costs_third_run () =
  let clean = C.Redundancy.dmr Hetsim.Machine.tardis ~n:8192 in
  let faulty = C.Redundancy.dmr ~faulty:true Hetsim.Machine.tardis ~n:8192 in
  Alcotest.(check bool) "about 1.5x of dmr" true
    (faulty.C.Redundancy.makespan /. clean.C.Redundancy.makespan > 1.45)

let test_tmr_overhead () =
  let r = C.Redundancy.tmr Hetsim.Machine.bulldozer64 ~n:8192 in
  Alcotest.(check bool) "about +200%" true
    (r.C.Redundancy.overhead_vs_plain > 1.99
    && r.C.Redundancy.overhead_vs_plain < 2.1)

let test_abft_beats_redundancy () =
  (* The paper's core economic argument. *)
  let machine = Hetsim.Machine.tardis and n = 8192 in
  let enhanced =
    (C.Schedule.run (C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ()) ~n)
      .C.Schedule.makespan
  in
  let dmr = (C.Redundancy.dmr machine ~n).C.Redundancy.makespan in
  let tmr = (C.Redundancy.tmr machine ~n).C.Redundancy.makespan in
  Alcotest.(check bool) "enhanced < dmr" true (enhanced < dmr);
  Alcotest.(check bool) "dmr < tmr" true (dmr < tmr)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_cost_scales () =
  let c1 = C.Checkpoint.checkpoint_cost Hetsim.Machine.tardis ~n:4096 in
  let c2 = C.Checkpoint.checkpoint_cost Hetsim.Machine.tardis ~n:8192 in
  Alcotest.(check bool) "4x bytes ~ 4x time" true
    (c2 /. c1 > 3.9 && c2 /. c1 < 4.1)

let test_young_daly () =
  (* sqrt(2 C / lambda) *)
  check_float "interval" (sqrt (2. *. 4. /. 0.01))
    (C.Checkpoint.young_daly_interval ~checkpoint_cost_s:4. ~error_rate:0.01);
  Alcotest.(check bool) "zero rate -> infinite interval" true
    (C.Checkpoint.young_daly_interval ~checkpoint_cost_s:4. ~error_rate:0.
    = infinity);
  Alcotest.(check bool) "bad cost" true
    (try
       ignore (C.Checkpoint.young_daly_interval ~checkpoint_cost_s:0. ~error_rate:1.);
       false
     with Invalid_argument _ -> true)

let test_checkpoint_expected_time_zero_rate () =
  let r =
    C.Checkpoint.expected_time Hetsim.Machine.tardis ~n:4096 ~error_rate:0. ()
  in
  check_float "no overhead without failures" 0. r.C.Checkpoint.overhead_vs_plain

let test_checkpoint_expected_grows_with_rate () =
  let at rate =
    (C.Checkpoint.expected_time Hetsim.Machine.tardis ~n:8192 ~error_rate:rate ())
      .C.Checkpoint.expected_s
  in
  Alcotest.(check bool) "monotone" true (at 0.001 < at 0.01 && at 0.01 < at 0.1)

let test_checkpoint_optimal_beats_bad_interval () =
  let rate = 0.01 in
  let opt =
    C.Checkpoint.expected_time Hetsim.Machine.tardis ~n:8192 ~error_rate:rate ()
  in
  let bad =
    C.Checkpoint.expected_time Hetsim.Machine.tardis ~n:8192 ~error_rate:rate
      ~interval_s:(opt.C.Checkpoint.interval_s /. 20.) ()
  in
  Alcotest.(check bool) "young/daly better" true
    (opt.C.Checkpoint.expected_s < bad.C.Checkpoint.expected_s)

let test_abft_beats_checkpointing_at_high_rate () =
  (* The composition argument: once failures are frequent relative to
     the run length, forward correction dominates rollback (for runs
     much shorter than the MTBF, checkpointing is trivially cheap —
     also verified below). *)
  let machine = Hetsim.Machine.tardis and n = 8192 in
  let enhanced =
    (C.Schedule.run (C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ()) ~n)
      .C.Schedule.makespan
  in
  let ckpt_at rate =
    (C.Checkpoint.expected_time machine ~n ~error_rate:rate ())
      .C.Checkpoint.expected_s
  in
  Alcotest.(check bool) "abft wins at 1 err/s" true (enhanced < ckpt_at 1.);
  Alcotest.(check bool) "rollback wins when failures are rare" true
    (ckpt_at 1e-6 < enhanced)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_ktuner_optimum_is_minimum =
  QCheck.Test.make ~name:"optimal_k really minimises expected time" ~count:100
    QCheck.(pair (float_range 0. 1.) (float_range 0.1 10.))
    (fun (rate, scale) ->
      let cost k = scale /. float_of_int k in
      let best =
        Abft.Ktuner.optimal_k ~base_s:10. ~verify_cost_s:cost ~error_rate:rate ()
      in
      List.for_all
        (fun k ->
          (Abft.Ktuner.expected_time ~base_s:10. ~verify_cost_s:cost
             ~error_rate:rate k)
            .Abft.Ktuner.expected_s
          >= best.Abft.Ktuner.expected_s -. 1e-12)
        (List.init 16 (fun i -> i + 1)))

let props = List.map QCheck_alcotest.to_alcotest [ prop_ktuner_optimum_is_minimum ]

let () =
  Alcotest.run "extensions"
    [
      ( "ktuner",
        [
          Alcotest.test_case "zero rate -> large K" `Quick
            test_ktuner_zero_rate_prefers_large_k;
          Alcotest.test_case "high rate -> K=1" `Quick
            test_ktuner_high_rate_prefers_k1;
          Alcotest.test_case "monotone in rate" `Quick test_ktuner_monotone_in_rate;
          Alcotest.test_case "expected-time formula" `Quick
            test_ktuner_expected_time_formula;
          Alcotest.test_case "k=1 pays no recovery" `Quick
            test_ktuner_k1_never_pays_recovery;
          Alcotest.test_case "validation" `Quick test_ktuner_validation;
          Alcotest.test_case "cost model decreasing" `Quick
            test_ktuner_cost_model_decreases_in_k;
        ] );
      ( "redundancy",
        [
          Alcotest.test_case "dmr ~ +100%" `Quick test_dmr_overhead;
          Alcotest.test_case "dmr faulty pays third run" `Quick
            test_dmr_faulty_costs_third_run;
          Alcotest.test_case "tmr ~ +200%" `Quick test_tmr_overhead;
          Alcotest.test_case "abft beats redundancy" `Quick
            test_abft_beats_redundancy;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "cost scales" `Quick test_checkpoint_cost_scales;
          Alcotest.test_case "young/daly" `Quick test_young_daly;
          Alcotest.test_case "zero rate" `Quick
            test_checkpoint_expected_time_zero_rate;
          Alcotest.test_case "grows with rate" `Quick
            test_checkpoint_expected_grows_with_rate;
          Alcotest.test_case "optimal interval" `Quick
            test_checkpoint_optimal_beats_bad_interval;
          Alcotest.test_case "abft beats rollback" `Quick
            test_abft_beats_checkpointing_at_high_rate;
        ] );
      ("properties", props);
    ]
