(* Tests for the fault-injection framework: bit flips, plans, and the
   stateful injector. *)

open Matrix

let check_float = Alcotest.check (Alcotest.float 1e-12)

(* ------------------------------------------------------------------ *)
(* Bitflip                                                             *)
(* ------------------------------------------------------------------ *)

let test_flip_involution () =
  let x = 3.14159 in
  List.iter
    (fun bit ->
      let y = Bitflip.flip x bit in
      Alcotest.(check bool) "changed" false (x = y);
      check_float "flip twice restores" x (Bitflip.flip y bit))
    [ 0; 13; 40; 52; 62 ]

let test_flip_sign_bit () =
  check_float "sign" (-2.5) (Bitflip.flip 2.5 63)

let test_flip_exponent_halves () =
  (* Bit 52 is the lowest exponent bit; 1.0 stores exponent 1023, so
     clearing that bit halves the value. *)
  check_float "exponent" 0.5 (Bitflip.flip 1. 52);
  check_float "and back up" 1. (Bitflip.flip 0.5 52)

let test_flip_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Bitflip.flip 1. 64);
       false
     with Invalid_argument _ -> true)

let test_is_flipped () =
  let x = 7.25 in
  Alcotest.(check bool) "yes" true (Bitflip.is_flipped x (Bitflip.flip x 17) 17);
  Alcotest.(check bool) "wrong bit" false
    (Bitflip.is_flipped x (Bitflip.flip x 17) 18);
  Alcotest.(check bool) "same value" false (Bitflip.is_flipped x x 17)

let test_flipped_bits () =
  let x = 1.0 in
  let y = Bitflip.flip (Bitflip.flip x 3) 40 in
  Alcotest.(check (list int)) "both bits" [ 3; 40 ] (Bitflip.flipped_bits x y);
  Alcotest.(check (list int)) "identical" [] (Bitflip.flipped_bits x x)

let test_severity_ordering () =
  (* Exponent-field flips are (much) larger than low-mantissa flips. *)
  Alcotest.(check bool) "exp > mantissa" true
    (Bitflip.severity 1.5 60 > Bitflip.severity 1.5 2)

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_apply_kind () =
  check_float "offset" 11. (Fault.apply_kind (Fault.Value_offset { delta = 10. }) 1.);
  check_float "set" 99. (Fault.apply_kind (Fault.Value_set { value = 99. }) 1.);
  check_float "bitflip sign" (-1.)
    (Fault.apply_kind (Fault.Bit_flip { bit = 63 }) 1.)

let test_constructors () =
  let c =
    Fault.computing_error ~iteration:2 ~op:Fault.Gemm ~block:(3, 2)
      ~element:(1, 1) ()
  in
  Alcotest.(check bool) "window" true (c.Fault.window = Fault.In_computation Fault.Gemm);
  let s = Fault.storage_error ~iteration:1 ~block:(1, 0) ~element:(0, 0) () in
  Alcotest.(check bool) "storage window" true (s.Fault.window = Fault.In_storage)

let test_random_plan_valid () =
  let grid = 6 and block = 8 in
  let plan =
    Fault.random_plan ~seed:1 ~grid ~block ~count:200 ~storage_fraction:0.5 ()
  in
  Alcotest.(check int) "count" 200 (List.length plan);
  List.iter
    (fun inj ->
      let bi, bj = inj.Fault.block and ei, ej = inj.Fault.element in
      Alcotest.(check bool) "lower triangle" true (bi >= bj);
      Alcotest.(check bool) "block range" true (bi < grid && bj >= 0);
      Alcotest.(check bool) "element range" true
        (ei >= 0 && ei < block && ej >= 0 && ej < block);
      Alcotest.(check bool) "iteration range" true
        (inj.Fault.iteration >= 0 && inj.Fault.iteration < grid);
      match inj.Fault.window with
      | Fault.In_storage ->
          (* must fire no earlier than the block's column comes alive *)
          Alcotest.(check bool) "storage timing" true (inj.Fault.iteration >= bj)
      | Fault.In_computation op -> (
          match op with
          | Fault.Syrk | Fault.Potf2 ->
              Alcotest.(check bool) "diag target" true (bi = bj && bj = inj.Fault.iteration)
          | Fault.Gemm | Fault.Trsm ->
              Alcotest.(check bool) "panel target" true
                (bj = inj.Fault.iteration && bi > bj))
      | Fault.In_checksum | Fault.In_update _ | Fault.In_device
      | Fault.In_solver _ ->
          Alcotest.fail
            "checksum/device windows must not appear at default fractions")
    plan

let test_random_plan_deterministic () =
  let p1 = Fault.random_plan ~seed:7 ~grid:4 ~block:4 ~count:20 ~storage_fraction:0.3 () in
  let p2 = Fault.random_plan ~seed:7 ~grid:4 ~block:4 ~count:20 ~storage_fraction:0.3 () in
  Alcotest.(check string) "same" (Fault.to_string p1) (Fault.to_string p2);
  let p3 = Fault.random_plan ~seed:8 ~grid:4 ~block:4 ~count:20 ~storage_fraction:0.3 () in
  Alcotest.(check bool) "different seed differs" false
    (Fault.to_string p1 = Fault.to_string p3)

let test_random_plan_fractions () =
  let all_storage =
    Fault.random_plan ~seed:2 ~grid:4 ~block:4 ~count:50 ~storage_fraction:1. ()
  in
  Alcotest.(check bool) "all storage" true
    (List.for_all (fun i -> i.Fault.window = Fault.In_storage) all_storage);
  let none_storage =
    Fault.random_plan ~seed:2 ~grid:4 ~block:4 ~count:50 ~storage_fraction:0. ()
  in
  Alcotest.(check bool) "none storage" true
    (List.for_all (fun i -> i.Fault.window <> Fault.In_storage) none_storage)

let test_random_plan_grid_one () =
  let plan = Fault.random_plan ~seed:3 ~grid:1 ~block:4 ~count:10 ~storage_fraction:0.5 () in
  List.iter
    (fun inj ->
      Alcotest.(check bool) "only block (0,0)" true (inj.Fault.block = (0, 0));
      match inj.Fault.window with
      | Fault.In_computation op ->
          Alcotest.(check bool) "only potf2 possible" true (op = Fault.Potf2)
      | Fault.In_storage -> ()
      | Fault.In_checksum | Fault.In_update _ | Fault.In_device
      | Fault.In_solver _ ->
          Alcotest.fail
            "checksum/device windows must not appear at default fractions")
    plan

let test_random_plan_bad_args () =
  Alcotest.(check bool) "bad fraction" true
    (try
       ignore (Fault.random_plan ~seed:1 ~grid:2 ~block:2 ~count:1 ~storage_fraction:2. ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Injector                                                            *)
(* ------------------------------------------------------------------ *)

let tile_store grid block =
  Array.init grid (fun _ -> Array.init grid (fun _ -> Mat.create block block))

let lookup store (i, j) =
  if i < Array.length store && j < Array.length store.(0) then Some store.(i).(j)
  else None

let test_injector_storage_fires_once () =
  let store = tile_store 3 4 in
  let inj =
    Injector.create [ Fault.storage_error ~iteration:1 ~block:(2, 1) ~element:(3, 3) () ]
  in
  Injector.fire_storage inj ~iteration:0 ~lookup:(lookup store);
  Alcotest.(check int) "not yet" 0 (Injector.fired_count inj);
  Injector.fire_storage inj ~iteration:1 ~lookup:(lookup store);
  Alcotest.(check int) "fired" 1 (Injector.fired_count inj);
  Alcotest.(check bool) "tile corrupted" true (Mat.get store.(2).(1) 3 3 <> 0.);
  (* Firing the same iteration again must not re-apply. *)
  let before = Mat.get store.(2).(1) 3 3 in
  Injector.fire_storage inj ~iteration:1 ~lookup:(lookup store);
  check_float "idempotent" before (Mat.get store.(2).(1) 3 3);
  Alcotest.(check int) "no pending" 0 (List.length (Injector.pending inj))

let test_injector_compute_matches_op_and_block () =
  let store = tile_store 3 4 in
  let inj =
    Injector.create
      [
        Fault.computing_error ~delta:5. ~iteration:1 ~op:Fault.Gemm ~block:(2, 1)
          ~element:(0, 0) ();
      ]
  in
  (* Wrong op: no fire. *)
  Injector.fire_compute inj ~iteration:1 ~op:Fault.Trsm ~block:(2, 1) store.(2).(1);
  Alcotest.(check int) "wrong op" 0 (Injector.fired_count inj);
  (* Wrong block: no fire. *)
  Injector.fire_compute inj ~iteration:1 ~op:Fault.Gemm ~block:(1, 1) store.(1).(1);
  Alcotest.(check int) "wrong block" 0 (Injector.fired_count inj);
  (* Match. *)
  Injector.fire_compute inj ~iteration:1 ~op:Fault.Gemm ~block:(2, 1) store.(2).(1);
  Alcotest.(check int) "fired" 1 (Injector.fired_count inj);
  check_float "delta applied" 5. (Mat.get store.(2).(1) 0 0)

let test_injector_missing_block_stays_pending () =
  let store = tile_store 2 4 in
  let inj =
    Injector.create [ Fault.storage_error ~iteration:0 ~block:(9, 9) ~element:(0, 0) () ]
  in
  Injector.fire_storage inj ~iteration:0 ~lookup:(lookup store);
  Alcotest.(check int) "still pending" 1 (List.length (Injector.pending inj))

let test_injector_audit_log () =
  let store = tile_store 2 4 in
  Mat.set store.(1).(0) 2 2 42.;
  let inj =
    Injector.create
      [
        {
          Fault.iteration = 0;
          window = Fault.In_storage;
          block = (1, 0);
          element = (2, 2);
          kind = Fault.Value_set { value = -1. };
        };
      ]
  in
  Injector.fire_storage inj ~iteration:0 ~lookup:(lookup store);
  match Injector.fired inj with
  | [ f ] ->
      check_float "old" 42. f.Injector.old_value;
      check_float "new" (-1.) f.Injector.new_value
  | _ -> Alcotest.fail "expected exactly one log entry"

let test_injector_checksum_window () =
  (* a d×B checksum store: 2 checksum rows per 4-wide block *)
  let chks = tile_store 3 4 in
  let inj =
    Injector.create
      [ Fault.checksum_error ~bit:40 ~iteration:1 ~block:(2, 1) ~element:(1, 2) () ]
  in
  Injector.fire_checksum inj ~iteration:0 ~lookup:(lookup chks);
  Alcotest.(check int) "not yet" 0 (Injector.fired_count inj);
  Injector.fire_checksum inj ~iteration:1 ~lookup:(lookup chks);
  Alcotest.(check int) "fired" 1 (Injector.fired_count inj);
  Alcotest.(check bool) "checksum corrupted" true
    (Mat.get chks.(2).(1) 1 2 <> 0.);
  (* storage firings must never consume a checksum injection *)
  let inj2 =
    Injector.create
      [ Fault.checksum_error ~iteration:0 ~block:(1, 0) ~element:(0, 0) () ]
  in
  Injector.fire_storage inj2 ~iteration:0 ~lookup:(lookup chks);
  Alcotest.(check int) "storage does not fire checksum" 0
    (Injector.fired_count inj2)

let test_injector_update_window () =
  let chks = tile_store 3 4 in
  let inj =
    Injector.create
      [
        Fault.update_error ~delta:7. ~iteration:1 ~op:Fault.Trsm ~block:(2, 1)
          ~element:(0, 3) ();
      ]
  in
  (* wrong op, wrong block, wrong iteration: no fire *)
  Injector.fire_update inj ~iteration:1 ~op:Fault.Gemm ~block:(2, 1) chks.(2).(1);
  Injector.fire_update inj ~iteration:1 ~op:Fault.Trsm ~block:(1, 1) chks.(1).(1);
  Injector.fire_update inj ~iteration:0 ~op:Fault.Trsm ~block:(2, 1) chks.(2).(1);
  Alcotest.(check int) "no mismatch fires" 0 (Injector.fired_count inj);
  Injector.fire_update inj ~iteration:1 ~op:Fault.Trsm ~block:(2, 1) chks.(2).(1);
  Alcotest.(check int) "fired" 1 (Injector.fired_count inj);
  check_float "delta applied" 7. (Mat.get chks.(2).(1) 0 3)

let test_injector_fired_count_matches_log () =
  let store = tile_store 3 4 in
  let inj =
    Injector.create
      [
        Fault.storage_error ~iteration:0 ~block:(1, 0) ~element:(0, 0) ();
        Fault.checksum_error ~iteration:0 ~block:(2, 0) ~element:(1, 1) ();
      ]
  in
  Injector.fire_storage inj ~iteration:0 ~lookup:(lookup store);
  Injector.fire_checksum inj ~iteration:0 ~lookup:(lookup store);
  Alcotest.(check int) "count = log length"
    (List.length (Injector.fired inj))
    (Injector.fired_count inj);
  Alcotest.(check int) "both fired" 2 (Injector.fired_count inj)

let test_random_plan_checksum_fractions () =
  let all_checksum =
    Fault.random_plan ~seed:4 ~grid:4 ~block:4 ~count:50 ~storage_fraction:0.
      ~checksum_fraction:1. ()
  in
  Alcotest.(check bool) "all checksum" true
    (List.for_all
       (fun i -> i.Fault.window = Fault.In_checksum)
       all_checksum);
  List.iter
    (fun i ->
      let r, c = i.Fault.element in
      Alcotest.(check bool) "element in d x B" true
        (r >= 0 && r < 2 && c >= 0 && c < 4))
    all_checksum;
  let all_update =
    Fault.random_plan ~seed:4 ~grid:4 ~block:4 ~count:50 ~storage_fraction:0.
      ~update_fraction:1. ()
  in
  Alcotest.(check bool) "all update" true
    (List.for_all
       (fun i ->
         match i.Fault.window with Fault.In_update _ -> true | _ -> false)
       all_update);
  (* the default fractions keep plans identical to the historic
     two-window generator *)
  let p_default =
    Fault.random_plan ~seed:9 ~grid:5 ~block:6 ~count:30 ~storage_fraction:0.4 ()
  in
  let p_explicit =
    Fault.random_plan ~seed:9 ~grid:5 ~block:6 ~count:30 ~storage_fraction:0.4
      ~checksum_fraction:0. ~update_fraction:0. ()
  in
  Alcotest.(check string) "zero fractions are the default"
    (Fault.to_string p_default) (Fault.to_string p_explicit)

let test_injector_multiple_same_iteration () =
  let store = tile_store 3 4 in
  let inj =
    Injector.create
      [
        Fault.storage_error ~iteration:1 ~block:(1, 0) ~element:(0, 0) ();
        Fault.storage_error ~iteration:1 ~block:(2, 0) ~element:(1, 1) ();
        Fault.storage_error ~iteration:2 ~block:(2, 2) ~element:(2, 2) ();
      ]
  in
  Injector.fire_storage inj ~iteration:1 ~lookup:(lookup store);
  Alcotest.(check int) "two fired" 2 (Injector.fired_count inj);
  Alcotest.(check int) "one left" 1 (List.length (Injector.pending inj))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_flip_involution =
  QCheck.Test.make ~name:"bit flip is an involution" ~count:500
    QCheck.(pair (float_range (-1e6) 1e6) (int_range 0 63))
    (fun (x, bit) ->
      let y = Bitflip.flip x bit in
      let z = Bitflip.flip y bit in
      Int64.bits_of_float z = Int64.bits_of_float x)

let prop_flip_changes_representation =
  QCheck.Test.make ~name:"bit flip changes the representation" ~count:500
    QCheck.(pair (float_range (-1e6) 1e6) (int_range 0 63))
    (fun (x, bit) ->
      Int64.bits_of_float (Bitflip.flip x bit) <> Int64.bits_of_float x)

let prop_plan_size =
  QCheck.Test.make ~name:"plan always has requested size" ~count:100
    QCheck.(triple (int_range 0 50) (int_range 1 8) small_nat)
    (fun (count, grid, seed) ->
      List.length
        (Fault.random_plan ~seed ~grid ~block:4 ~count ~storage_fraction:0.5 ())
      = count)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_flip_involution; prop_flip_changes_representation; prop_plan_size ]

let () =
  Alcotest.run "fault"
    [
      ( "bitflip",
        [
          Alcotest.test_case "involution" `Quick test_flip_involution;
          Alcotest.test_case "sign bit" `Quick test_flip_sign_bit;
          Alcotest.test_case "exponent bit" `Quick test_flip_exponent_halves;
          Alcotest.test_case "out of range" `Quick test_flip_out_of_range;
          Alcotest.test_case "is_flipped" `Quick test_is_flipped;
          Alcotest.test_case "flipped_bits" `Quick test_flipped_bits;
          Alcotest.test_case "severity" `Quick test_severity_ordering;
        ] );
      ( "plan",
        [
          Alcotest.test_case "apply_kind" `Quick test_apply_kind;
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "random plan valid" `Quick test_random_plan_valid;
          Alcotest.test_case "deterministic" `Quick
            test_random_plan_deterministic;
          Alcotest.test_case "fractions" `Quick test_random_plan_fractions;
          Alcotest.test_case "checksum fractions" `Quick
            test_random_plan_checksum_fractions;
          Alcotest.test_case "grid=1" `Quick test_random_plan_grid_one;
          Alcotest.test_case "bad args" `Quick test_random_plan_bad_args;
        ] );
      ( "injector",
        [
          Alcotest.test_case "storage fires once" `Quick
            test_injector_storage_fires_once;
          Alcotest.test_case "compute matches op+block" `Quick
            test_injector_compute_matches_op_and_block;
          Alcotest.test_case "missing block pending" `Quick
            test_injector_missing_block_stays_pending;
          Alcotest.test_case "audit log" `Quick test_injector_audit_log;
          Alcotest.test_case "checksum window" `Quick
            test_injector_checksum_window;
          Alcotest.test_case "update window" `Quick test_injector_update_window;
          Alcotest.test_case "fired_count matches log" `Quick
            test_injector_fired_count_matches_log;
          Alcotest.test_case "multiple per iteration" `Quick
            test_injector_multiple_same_iteration;
        ] );
      ("properties", props);
    ]
