(* Tests for the heterogeneous-system simulator. The [testbench]
   machine has deliberately round numbers (GPU 1 TFLOP at efficiency 1,
   CPU 100 GFLOPS, link 10 GB/s, zero latency/launch overhead), so every
   expected duration below is computed by hand. *)

open Hetsim

let check_float = Alcotest.check (Alcotest.float 1e-12)
let m = Machine.testbench

(* ------------------------------------------------------------------ *)
(* Devices and machines                                                *)
(* ------------------------------------------------------------------ *)

let test_presets_valid () =
  List.iter
    (fun (name, mach) ->
      let check d =
        match Device.validate d with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" name e
      in
      check mach.Machine.cpu;
      check mach.Machine.gpu)
    Machine.all_presets

let test_machine_find () =
  Alcotest.(check bool) "tardis" true (Machine.find "TARDIS" <> None);
  Alcotest.(check bool) "unknown" true (Machine.find "cray" = None)

let test_paper_block_sizes () =
  (* MAGMA: 256 on Fermi, 512 on Kepler — §VII-A. *)
  Alcotest.(check int) "fermi" 256 Machine.tardis.Machine.default_block;
  Alcotest.(check int) "kepler" 512 Machine.bulldozer64.Machine.default_block

let test_gflops_sustained () =
  let d = m.Machine.gpu in
  (* half_k = 0 so the sustained rate equals peak at any k. *)
  check_float "sustained" 1000. (Device.gflops_sustained d ~k:1);
  let fermi = Machine.tardis.Machine.gpu in
  let small = Device.gflops_sustained fermi ~k:16 in
  let large = Device.gflops_sustained fermi ~k:4096 in
  Alcotest.(check bool) "ramp up" true (small < large);
  Alcotest.(check bool) "below peak" true
    (large < fermi.Device.peak_gflops)

let test_aggregate_util () =
  let d = m.Machine.gpu in
  (* single 0.25, effectiveness 1.0: util(p) = min(1, 0.25p). *)
  check_float "p=1" 0.25 (Device.aggregate_blas2_util d ~concurrent:1);
  check_float "p=2" 0.5 (Device.aggregate_blas2_util d ~concurrent:2);
  check_float "p=4" 1.0 (Device.aggregate_blas2_util d ~concurrent:4);
  check_float "saturates" 1.0 (Device.aggregate_blas2_util d ~concurrent:8);
  (* capped at max_concurrent_kernels = 8 *)
  check_float "capped" 1.0 (Device.aggregate_blas2_util d ~concurrent:100)

let test_transfer_time () =
  check_float "1 GB at 10GB/s" 0.1 (Machine.transfer_time m ~bytes:1_000_000_000);
  let t = Machine.transfer_time Machine.tardis ~bytes:0 in
  check_float "latency only" 10e-6 t

(* ------------------------------------------------------------------ *)
(* Kernel descriptors                                                  *)
(* ------------------------------------------------------------------ *)

let test_kernel_flops () =
  check_float "gemm" 2e9 (Kernel.flops (Kernel.Gemm { m = 1000; n = 1000; k = 1000 }));
  check_float "trsm" (256. *. 256. *. 512.)
    (Kernel.flops (Kernel.Trsm { order = 256; nrhs = 512 }));
  check_float "potf2" (64. ** 3. /. 3.) (Kernel.flops (Kernel.Potf2 { n = 64 }));
  check_float "recalc" (4. *. 256. *. 256.)
    (Kernel.flops (Kernel.Checksum_recalc { b = 256; nchk = 2 }));
  check_float "memcpy" 0. (Kernel.flops (Kernel.Memcpy { bytes = 100 }))

let test_kernel_shape () =
  Alcotest.(check bool) "gemm blas3" true
    (Kernel.shape (Kernel.Gemm { m = 1; n = 1; k = 1 }) = Kernel.Blas3);
  Alcotest.(check bool) "recalc blas2" true
    (Kernel.shape (Kernel.Checksum_recalc { b = 4; nchk = 2 }) = Kernel.Blas2);
  Alcotest.(check bool) "compare trivial" true
    (Kernel.shape (Kernel.Checksum_compare { b = 4; nchk = 2 }) = Kernel.Trivial)

let test_kernel_syrk_flops () =
  (* n(n+1)k: the triangle of the full 2n²k gemm count. *)
  check_float "syrk" (100. *. 101. *. 50.)
    (Kernel.flops (Kernel.Syrk { n = 100; k = 50 }))

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_blas3_duration () =
  let d = m.Machine.gpu in
  check_float "gemm 2e9 flops at 1 TFLOP" 2e-3
    (Cost_model.duration d (Kernel.Gemm { m = 1000; n = 1000; k = 1000 }))

let test_blas2_duration_bandwidth_bound () =
  let d = m.Machine.gpu in
  (* One fused pass over the 1000x1000 tile at 25 GB/s effective
     (0.25 util of 100 GB/s). *)
  let k = Kernel.Checksum_recalc { b = 1000; nchk = 2 } in
  let bytes = float_of_int (Kernel.bytes k) in
  check_float "tile read once" (8e6 +. (8. *. 2. *. 2. *. 1000.)) bytes;
  check_float "bw bound" (bytes /. 25e9) (Cost_model.duration d k)

let test_memcpy_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Cost_model.duration m.Machine.gpu (Kernel.Memcpy { bytes = 8 }));
       false
     with Invalid_argument _ -> true)

let test_batch_speedup () =
  let d = m.Machine.gpu in
  let k = Kernel.Checksum_recalc { b = 1000; nchk = 2 } in
  let ks = List.init 8 (fun _ -> k) in
  let bytes = float_of_int (Kernel.bytes k) in
  let serial = Cost_model.batch_duration d ~streams:1 ks in
  let conc = Cost_model.batch_duration d ~streams:4 ks in
  (* serial: 8 kernels at 25 GB/s; concurrent (width 4, util 1.0): the
     same traffic at the full 100 GB/s — a 4x speedup. *)
  check_float "serial" (8. *. bytes /. 25e9) serial;
  check_float "concurrent" (8. *. bytes /. 100e9) conc;
  check_float "4x" 4. (serial /. conc)

let test_batch_serial_equals_sum () =
  let d = m.Machine.gpu in
  let ks = List.init 5 (fun i -> Kernel.Checksum_recalc { b = 100 + i; nchk = 2 }) in
  let serial = Cost_model.batch_duration d ~streams:1 ks in
  let sum = List.fold_left (fun a k -> a +. Cost_model.duration d k) 0. ks in
  check_float "degenerates to sum" sum serial

let test_batch_rejects_blas3 () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Cost_model.batch_duration m.Machine.gpu ~streams:2
            [ Kernel.Gemm { m = 8; n = 8; k = 8 } ]);
       false
     with Invalid_argument _ -> true)

let test_background_duration () =
  let d = m.Machine.gpu in
  (* spare fraction 0.5 => twice the foreground duration. *)
  let k = Kernel.Gemm { m = 1000; n = 1000; k = 1000 } in
  check_float "slowed by spare fraction" 4e-3 (Cost_model.background_duration d k)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let gemm_1ms = Kernel.Gemm { m = 1000; n = 1000; k = 500 }
(* 1e9 flops -> 1 ms on the testbench GPU. *)

let test_engine_single_op () =
  let e = Engine.create m in
  let ev = Engine.submit e Engine.Gpu gemm_1ms in
  check_float "finish" 1e-3 (Engine.time_of e ev);
  check_float "makespan" 1e-3 (Engine.makespan e)

let test_engine_resource_serialization () =
  let e = Engine.create m in
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  let ev = Engine.submit e Engine.Gpu gemm_1ms in
  check_float "serialized" 2e-3 (Engine.time_of e ev)

let test_engine_cpu_gpu_overlap () =
  let e = Engine.create m in
  let g = Engine.submit e Engine.Gpu gemm_1ms in
  (* 1e8 flops on 100 GFLOPS CPU -> 1 ms, overlapping the GPU. *)
  let c = Engine.submit e Engine.Cpu (Kernel.Host_flops 1e8) in
  check_float "gpu" 1e-3 (Engine.time_of e g);
  check_float "cpu" 1e-3 (Engine.time_of e c);
  check_float "overlap" 1e-3 (Engine.makespan e)

let test_engine_dependency () =
  let e = Engine.create m in
  let c = Engine.submit e Engine.Cpu (Kernel.Host_flops 1e8) in
  let g = Engine.submit e ~deps:[ c ] Engine.Gpu gemm_1ms in
  check_float "chained" 2e-3 (Engine.time_of e g)

let test_engine_stream_order () =
  let e = Engine.create m in
  let s = Engine.new_stream e in
  (* Two CPU ops on one stream serialize even without deps; resource
     would serialize them anyway, so use distinct resources to see the
     stream effect. *)
  let a = Engine.submit e ~stream:s Engine.Gpu gemm_1ms in
  let b = Engine.submit e ~stream:s Engine.Cpu (Kernel.Host_flops 1e8) in
  check_float "a" 1e-3 (Engine.time_of e a);
  check_float "stream serializes" 2e-3 (Engine.time_of e b)

let test_engine_transfer () =
  let e = Engine.create m in
  let h2d = Engine.transfer e ~dir:`H2d 1_000_000_000 in
  check_float "h2d 1GB" 0.1 (Engine.time_of e h2d);
  (* The two link directions are independent resources. *)
  let d2h = Engine.transfer e ~dir:`D2h 1_000_000_000 in
  check_float "full duplex" 0.1 (Engine.time_of e d2h);
  check_float "makespan" 0.1 (Engine.makespan e)

let test_engine_join_delay () =
  let e = Engine.create m in
  let a = Engine.submit e Engine.Gpu gemm_1ms in
  let b = Engine.submit e Engine.Cpu (Kernel.Host_flops 2e8) in
  let j = Engine.join e [ a; b ] in
  check_float "join" 2e-3 (Engine.time_of e j);
  let d = Engine.delay e ~deps:[ j ] 5e-3 in
  check_float "delay" 7e-3 (Engine.time_of e d);
  check_float "ready" 0. (Engine.time_of e Engine.ready)

let test_engine_background_does_not_block () =
  let e = Engine.create m in
  let bg = Engine.submit_background e gemm_1ms in
  let fg = Engine.submit e Engine.Gpu gemm_1ms in
  check_float "fg unaffected" 1e-3 (Engine.time_of e fg);
  check_float "bg at half speed" 2e-3 (Engine.time_of e bg)

let test_engine_batch () =
  let e = Engine.create m in
  let k = Kernel.Checksum_recalc { b = 1000; nchk = 2 } in
  let ks = List.init 8 (fun _ -> k) in
  let ev = Engine.submit_batch e ~streams:4 ks in
  check_float "batch"
    (8. *. float_of_int (Kernel.bytes k) /. 100e9)
    (Engine.time_of e ev);
  let empty = Engine.submit_batch e ~streams:4 [] in
  check_float "empty batch immediate" 0. (Engine.time_of e empty)

let test_engine_phase_accounting () =
  let e = Engine.create m in
  let _ = Engine.submit e ~phase:"compute" Engine.Gpu gemm_1ms in
  let _ = Engine.submit e ~phase:"chk-recalc" Engine.Gpu gemm_1ms in
  let _ = Engine.submit e ~phase:"chk-recalc" Engine.Cpu (Kernel.Host_flops 1e8) in
  check_float "compute" 1e-3 (Engine.phase_time e "compute");
  check_float "recalc" 2e-3 (Engine.phase_time e "chk-recalc");
  check_float "absent" 0. (Engine.phase_time e "nope");
  Alcotest.(check int) "op count" 3 (Engine.op_count e);
  match Engine.phases e with
  | (top, t) :: _ ->
      Alcotest.(check string) "largest phase" "chk-recalc" top;
      check_float "largest time" 2e-3 t
  | [] -> Alcotest.fail "no phases"

let test_engine_busy_time () =
  let e = Engine.create m in
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  let _ = Engine.submit e Engine.Cpu (Kernel.Host_flops 1e8) in
  check_float "gpu busy" 2e-3 (Engine.busy_time e Engine.Gpu);
  check_float "cpu busy" 1e-3 (Engine.busy_time e Engine.Cpu);
  check_float "spare idle" 0. (Engine.busy_time e Engine.Gpu_spare)

let test_engine_records_ordered () =
  let e = Engine.create m in
  let _ = Engine.submit e ~phase:"a" Engine.Gpu gemm_1ms in
  let _ = Engine.submit e ~phase:"b" Engine.Cpu (Kernel.Host_flops 1e8) in
  match Engine.records e with
  | [ r1; r2 ] ->
      Alcotest.(check string) "first" "a" r1.Engine.phase;
      Alcotest.(check string) "second" "b" r2.Engine.phase
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_engine_memcpy_guard () =
  let e = Engine.create m in
  Alcotest.(check bool) "memcpy via submit" true
    (try
       ignore (Engine.submit e Engine.Gpu (Kernel.Memcpy { bytes = 8 }));
       false
     with Invalid_argument _ -> true)

let test_chrome_trace () =
  let e = Engine.create m in
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  let s = Engine.to_chrome_trace e in
  Alcotest.(check bool) "array" true
    (String.length s > 2 && s.[0] = '[' && s.[String.length s - 1] = ']');
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has name field" true (contains s "\"name\"")

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_utilization () =
  let e = Engine.create m in
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  (* makespan 2 ms, gpu busy 2 ms -> 100%; cpu idle -> 0%. *)
  let u = Engine.utilization e in
  check_float "gpu full" 1.0 (List.assoc Engine.Gpu u);
  check_float "cpu idle" 0.0 (List.assoc Engine.Cpu u);
  (* an overlapping CPU op halves nothing: still 2ms makespan *)
  let _ = Engine.submit e Engine.Cpu (Kernel.Host_flops 1e8) in
  let u = Engine.utilization e in
  check_float "cpu half" 0.5 (List.assoc Engine.Cpu u)

let test_utilization_empty () =
  let e = Engine.create m in
  List.iter (fun (_, u) -> check_float "zero" 0. u) (Engine.utilization e)

let test_binding_summary () =
  let e = Engine.create m in
  (* op 1: starts at 0 -> free *)
  let a = Engine.submit e Engine.Gpu gemm_1ms in
  (* op 2: same resource, no deps -> resource-bound *)
  let _ = Engine.submit e Engine.Gpu gemm_1ms in
  (* op 3: cpu, depends on op 1 -> deps-bound *)
  let _ = Engine.submit e ~deps:[ a ] Engine.Cpu (Kernel.Host_flops 1e8) in
  let summary = Engine.binding_summary e in
  Alcotest.(check int) "free" 1 (List.assoc Engine.Started_free summary);
  Alcotest.(check int) "resource" 1 (List.assoc Engine.Bound_by_resource summary);
  Alcotest.(check int) "deps" 1 (List.assoc Engine.Bound_by_deps summary)

let test_binding_stream () =
  let e = Engine.create m in
  let s = Engine.new_stream e in
  let _ = Engine.submit e ~stream:s Engine.Gpu gemm_1ms in
  let _ = Engine.submit e ~stream:s Engine.Cpu (Kernel.Host_flops 1e8) in
  (* second op waits only on the stream *)
  Alcotest.(check int) "stream" 1
    (List.assoc Engine.Bound_by_stream (Engine.binding_summary e))

let test_gantt_renders () =
  let e = Engine.create m in
  let _ = Engine.submit e ~phase:"compute" Engine.Gpu gemm_1ms in
  let _ = Engine.submit e ~phase:"transfer" Engine.Gpu gemm_1ms in
  let g = Engine.gantt ~width:40 e in
  Alcotest.(check bool) "has gpu lane" true
    (String.length g > 0
    && List.exists
         (fun line -> String.length line >= 3 && String.sub line 0 3 = "gpu")
         (String.split_on_char '\n' g));
  Alcotest.(check bool) "draws compute glyph" true (String.contains g '#');
  Alcotest.(check bool) "draws transfer glyph" true (String.contains g '-')

let test_gantt_empty () =
  let e = Engine.create m in
  Alcotest.(check string) "empty" "(empty timeline)\n" (Engine.gantt e)

(* Regression: ~width below 8 used to raise Invalid_argument
   "String.make" from the axis line's [String.make (width - 8)]. The
   renderer now clamps to a usable minimum instead of raising. *)
let test_gantt_narrow () =
  let e = Engine.create m in
  let _ = Engine.submit e ~phase:"compute" Engine.Gpu gemm_1ms in
  let g = Engine.gantt ~width:1 e in
  Alcotest.(check bool) "width 1 renders" true (String.length g > 0);
  Alcotest.(check bool) "still draws glyphs" true (String.contains g '#')

(* Regression: to_chrome_trace embedded labels/phases raw — a double
   quote was mangled to ''' and backslashes / control characters
   corrupted the JSON document. All three must now round-trip through
   proper JSON escaping. *)
let test_chrome_trace_escaping () =
  let e = Engine.create m in
  let hostile = "quo\"te back\\slash ctrl\x01end" in
  let _ = Engine.submit e ~phase:hostile Engine.Gpu gemm_1ms in
  let s = Engine.to_chrome_trace e in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "quote escaped" true (contains s "quo\\\"te");
  Alcotest.(check bool) "backslash escaped" true (contains s "back\\\\slash");
  Alcotest.(check bool) "control char escaped" true (contains s "ctrl\\u0001end");
  Alcotest.(check bool) "no raw control byte" false (String.contains s '\x01');
  Alcotest.(check bool) "no apostrophe mangling" false (contains s "quo'te")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_kernel =
  QCheck.make
    QCheck.Gen.(
      oneof
        [
          (int_range 1 512 >>= fun m ->
           int_range 1 512 >>= fun n ->
           int_range 1 512 >|= fun k -> Kernel.Gemm { m; n; k });
          (int_range 1 512 >>= fun n ->
           int_range 1 512 >|= fun k -> Kernel.Syrk { n; k });
          (int_range 1 512 >|= fun n -> Kernel.Potf2 { n });
          (int_range 1 512 >>= fun b ->
           int_range 1 3 >|= fun nchk -> Kernel.Checksum_recalc { b; nchk });
        ])
    ~print:Kernel.label

let prop_duration_positive =
  QCheck.Test.make ~name:"durations are positive and finite" ~count:200
    arb_kernel (fun k ->
      let d = Cost_model.duration Machine.tardis.Machine.gpu k in
      d > 0. && Float.is_finite d)

let prop_batch_no_slower_than_serial =
  QCheck.Test.make ~name:"batching never slows a batch down" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 1 16))
    (fun (nk, streams) ->
      let ks =
        List.init nk (fun i -> Kernel.Checksum_recalc { b = 64 + i; nchk = 2 })
      in
      let d = Machine.bulldozer64.Machine.gpu in
      Cost_model.batch_duration d ~streams ks
      <= Cost_model.batch_duration d ~streams:1 ks +. 1e-12)

let prop_makespan_monotonic =
  QCheck.Test.make ~name:"makespan grows monotonically" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range 1 200))
    (fun sizes ->
      let e = Engine.create Machine.testbench in
      let ok = ref true in
      let prev = ref 0. in
      List.iter
        (fun n ->
          let _ = Engine.submit e Engine.Gpu (Kernel.Gemm { m = n; n; k = n }) in
          let ms = Engine.makespan e in
          if ms < !prev then ok := false;
          prev := ms)
        sizes;
      !ok)

let prop_deps_respected =
  QCheck.Test.make ~name:"an op never starts before its deps" ~count:50
    QCheck.(int_range 1 100)
    (fun n ->
      let e = Engine.create Machine.testbench in
      let a = Engine.submit e Engine.Cpu (Kernel.Host_flops (float n *. 1e7)) in
      let b = Engine.submit e ~deps:[ a ] Engine.Gpu (Kernel.Gemm { m = n; n; k = n }) in
      Engine.time_of e b >= Engine.time_of e a)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_duration_positive;
      prop_batch_no_slower_than_serial;
      prop_makespan_monotonic;
      prop_deps_respected;
    ]

(* ------------------------------------------------------------------ *)
(* Failure-aware submission and the resilient driver                   *)
(* ------------------------------------------------------------------ *)

let rel ?(transient = 0.) ?(hang = 0.) ?(timeout = 0.05) ?(corrupt = 0.)
    ?(dropout = infinity) ?(heals = infinity) () =
  {
    Device.transient_fault_rate = transient;
    hang_rate = hang;
    hang_timeout_s = timeout;
    transfer_corruption_rate = corrupt;
    dropout_after_s = dropout;
    faults_until_s = heals;
  }

let storm ?cpu ?gpu () = Machine.with_reliability ?cpu ?gpu Machine.testbench
let gemm n = Kernel.Gemm { m = n; n; k = n }

(* testbench GPU: 1 TFLOP at full efficiency, so Gemm 1000^3 = 2e9 flops
   runs in exactly 2 ms — a transient fault must charge all of it *)
let test_failure_transient_duration () =
  let e = Engine.create (storm ~gpu:(rel ~transient:1.0 ()) ()) in
  match Engine.submit_result e Engine.Gpu (gemm 1000) with
  | Engine.Failed (Engine.Transient_fault, ev) ->
      check_float "full duration charged" 0.002 (Engine.time_of e ev)
  | Engine.Failed (_, _) | Engine.Completed _ ->
      Alcotest.fail "expected a transient fault"

let test_failure_hang_timeout () =
  let e = Engine.create (storm ~gpu:(rel ~hang:1.0 ~timeout:0.5 ()) ()) in
  match Engine.submit_result e Engine.Gpu (gemm 1000) with
  | Engine.Failed (Engine.Hang { timeout_s }, ev) ->
      check_float "watchdog deadline reported" 0.5 timeout_s;
      check_float "timeout charged, not the kernel" 0.5 (Engine.time_of e ev)
  | Engine.Failed (_, _) | Engine.Completed _ -> Alcotest.fail "expected a hang"

let test_failure_dropout_latches () =
  let e = Engine.create (storm ~gpu:(rel ~dropout:0.001 ()) ()) in
  let first =
    match Engine.submit_result e Engine.Gpu (gemm 1000) with
    | Engine.Completed ev -> ev
    | Engine.Failed (_, _) ->
        Alcotest.fail "first op starts at 0, before the dropout"
  in
  (match Engine.submit_result e ~deps:[ first ] Engine.Gpu (gemm 1000) with
  | Engine.Failed (Engine.Device_lost, ev) ->
      check_float "observed instantly at the would-be start"
        (Engine.time_of e first) (Engine.time_of e ev)
  | Engine.Failed (_, _) | Engine.Completed _ ->
      Alcotest.fail "expected the device to be lost");
  Alcotest.(check bool) "latched" true (Engine.device_lost e Engine.Gpu);
  Alcotest.(check bool) "spare channel shares fate" true
    (Engine.device_lost e Engine.Gpu_spare)

(* On a reliable machine the resilient driver must be an exact
   pass-through: same op count, bit-identical makespan, zero stats. *)
let test_resilient_passthrough_exact () =
  let plain = Engine.create Machine.testbench in
  let a = Engine.submit plain Engine.Gpu (gemm 1000) in
  let b = Engine.transfer plain ~deps:[ a ] ~dir:`D2h 1_000_000 in
  let _ = Engine.submit plain ~deps:[ b ] Engine.Cpu (Kernel.Host_flops 1e8) in
  let e = Engine.create Machine.testbench in
  let r = Resilient.create e in
  let a' = Resilient.submit r Engine.Gpu (gemm 1000) in
  let b' = Resilient.transfer r ~deps:[ a' ] ~dir:`D2h 1_000_000 in
  let _ = Resilient.submit r ~deps:[ b' ] Engine.Cpu (Kernel.Host_flops 1e8) in
  Alcotest.(check bool) "bit-identical makespan" true
    (Float.equal (Engine.makespan plain) (Engine.makespan e));
  Alcotest.(check int) "same op count" (Engine.op_count plain)
    (Engine.op_count e);
  let s = Resilient.stats r in
  Alcotest.(check int) "no retries" 0
    (s.Resilient.cpu.Resilient.retries + s.Resilient.gpu.Resilient.retries);
  Alcotest.(check bool) "not degraded" false (Resilient.degraded r)

let test_resilient_retry_recovers () =
  let e = Engine.create ~seed:7 (storm ~gpu:(rel ~transient:0.3 ()) ()) in
  let r = Resilient.create ~seed:7 e in
  let prev = ref Engine.ready in
  for _ = 1 to 12 do
    prev := Resilient.submit r ~deps:[ !prev ] Engine.Gpu (gemm 400)
  done;
  let s = Resilient.stats r in
  Alcotest.(check bool) "saw transient faults" true
    (s.Resilient.gpu.Resilient.transient_faults > 0);
  Alcotest.(check bool) "retried" true (s.Resilient.gpu.Resilient.retries > 0);
  Alcotest.(check bool) "backoff charged" true
    (s.Resilient.gpu.Resilient.backoff_s > 0.);
  Alcotest.(check int) "every op completed somewhere" 12
    (s.Resilient.cpu.Resilient.completed + s.Resilient.gpu.Resilient.completed)

(* Zero-jitter policy makes the backoff schedule hand-computable:
   base 0.04 with factor 10 capped at 0.1 gives 0.04 + 0.1 + 0.1 + 0.1,
   and a zero quarantine threshold forces the full budget to be spent on
   the GPU before the op degrades. *)
let test_resilient_backoff_schedule () =
  let policy =
    {
      Resilient.default_policy with
      Resilient.max_retries = 4;
      base_backoff_s = 0.04;
      backoff_factor = 10.;
      max_backoff_s = 0.1;
      jitter = 0.;
      quarantine_threshold = 0.;
    }
  in
  let e = Engine.create (storm ~gpu:(rel ~transient:1.0 ()) ()) in
  let r = Resilient.create ~policy e in
  let _ = Resilient.submit r Engine.Gpu (gemm 1000) in
  let s = Resilient.stats r in
  check_float "capped exponential backoff" (0.04 +. 0.1 +. 0.1 +. 0.1)
    s.Resilient.gpu.Resilient.backoff_s;
  Alcotest.(check int) "full budget spent on the GPU" 5
    s.Resilient.gpu.Resilient.submitted;
  Alcotest.(check int) "then degraded onto the CPU" 1 s.Resilient.degraded_ops

(* Default policy, certain faults: health 0.6^4 < 0.2 quarantines the
   GPU after its 4th attempt; the op still completes on the CPU and no
   later submission touches the GPU again. *)
let test_resilient_quarantine_reroutes () =
  let e = Engine.create (storm ~gpu:(rel ~transient:1.0 ()) ()) in
  let r = Resilient.create e in
  let ev = Resilient.submit r Engine.Gpu (gemm 1000) in
  Alcotest.(check bool) "completed on the CPU fallback" true
    (Engine.time_of e ev > 0.);
  let s = Resilient.stats r in
  Alcotest.(check bool) "gpu quarantined" true
    (s.Resilient.gpu.Resilient.quarantined_at <> None);
  Alcotest.(check int) "gpu attempts bounded" 4
    s.Resilient.gpu.Resilient.submitted;
  Alcotest.(check bool) "degraded" true (Resilient.degraded r);
  let _ = Resilient.submit r Engine.Gpu (gemm 500) in
  let s2 = Resilient.stats r in
  Alcotest.(check int) "no further GPU attempts after quarantine" 4
    s2.Resilient.gpu.Resilient.submitted;
  Alcotest.(check int) "both ops replanned onto the cpu" 2
    s2.Resilient.degraded_ops

(* Corrupted transfers are an ABFT storage error, not a retry case: the
   copy takes its normal time (testbench link 10 GB/s -> 1e9 B = 0.1 s),
   is counted, and is issued exactly once. *)
let test_resilient_corrupted_transfer () =
  let e = Engine.create (storm ~gpu:(rel ~corrupt:1.0 ()) ()) in
  let r = Resilient.create e in
  let ev = Resilient.transfer r ~dir:`H2d 1_000_000_000 in
  check_float "full normal duration charged" 0.1 (Engine.time_of e ev);
  let s = Resilient.stats r in
  Alcotest.(check int) "counted for the verify path" 1
    s.Resilient.corrupted_transfers;
  Alcotest.(check int) "never retried" 0
    (s.Resilient.cpu.Resilient.retries + s.Resilient.gpu.Resilient.retries);
  Alcotest.(check int) "exactly one copy issued" 1 (Engine.op_count e)

let test_resilient_gave_up () =
  let e = Engine.create (storm ~cpu:(rel ~transient:1.0 ()) ()) in
  let r = Resilient.create e in
  match Resilient.submit r Engine.Cpu (Kernel.Host_flops 1e8) with
  | _ -> Alcotest.fail "expected Gave_up"
  | exception Resilient.Gave_up { resource = Engine.Cpu; attempts; _ } ->
      Alcotest.(check int) "budget spent before giving up"
        (Resilient.default_policy.Resilient.max_retries + 1)
        attempts
  | exception Resilient.Gave_up _ ->
      Alcotest.fail "gave up on the wrong resource"

let run_storm_sequence seed =
  let e =
    Engine.create ~seed
      (storm ~gpu:(rel ~transient:0.35 ~hang:0.1 ~corrupt:0.25 ()) ())
  in
  let r = Resilient.create ~seed e in
  let prev = ref Engine.ready in
  for i = 1 to 10 do
    prev := Resilient.submit r ~deps:[ !prev ] Engine.Gpu (gemm (300 + (10 * i)));
    if i mod 3 = 0 then
      prev := Resilient.transfer r ~deps:[ !prev ] ~dir:`D2h 1_000_000
  done;
  (Engine.makespan e, Resilient.stats r)

let test_resilient_deterministic () =
  let m1, s1 = run_storm_sequence 11 in
  let m2, s2 = run_storm_sequence 11 in
  Alcotest.(check bool) "same seed, bit-identical makespan" true
    (Float.equal m1 m2);
  Alcotest.(check bool) "same seed, identical stats" true (s1 = s2);
  let m3, _ = run_storm_sequence 12 in
  Alcotest.(check bool) "different seed, different timeline" true
    (not (Float.equal m1 m3))

(* Satellite: a transiently-unhealthy GPU ([faults_until_s] = 0.05) is
   quarantined, the half-open re-probe wins its trust back once the
   fault window heals, and the attached balancer re-balances rows back
   onto the rejoined device. Timing is hand-checkable on testbench:
   gemm 1000 is 2 ms on the GPU and 20 ms degraded onto the CPU, so the
   0.02 s cooldown (doubling after the first failed probe) lands the
   winning probes safely past the heal time. *)
let test_resilient_reprobe_rejoins () =
  let machine = storm ~gpu:(rel ~transient:1.0 ~heals:0.05 ()) () in
  let e = Engine.create machine in
  let policy =
    {
      Resilient.default_policy with
      Resilient.reprobe_after_s = 0.02;
      jitter = 0.;
    }
  in
  let b = Load_balancer.create machine in
  let r = Resilient.create ~policy ~balancer:b e in
  let prev = ref Engine.ready in
  for _ = 1 to 30 do
    prev := Resilient.submit r ~deps:[ !prev ] Engine.Gpu (gemm 1000)
  done;
  let s = Resilient.stats r in
  Alcotest.(check bool) "gpu was quarantined" true
    (s.Resilient.degraded_at <> None);
  Alcotest.(check bool) "probes were sent" true (s.Resilient.reprobes >= 2);
  Alcotest.(check int) "device rejoined once" 1 s.Resilient.rejoins;
  Alcotest.(check bool) "post-rejoin work runs on the GPU again" true
    (s.Resilient.gpu.Resilient.completed > 0);
  Alcotest.(check bool) "no longer degrading new work" false
    (Resilient.gpu_unavailable r);
  (* the transient quarantine never collapsed the split — those
     still-nominated GPU submissions were the probe traffic *)
  Alcotest.(check bool) "balancer kept nominating the GPU" true
    (Load_balancer.gpu_available b);
  let sp = Load_balancer.tick b ~kernel:(gemm 1000) ~rows:10 in
  Alcotest.(check bool) "rejoin forces a resplit" true sp.Load_balancer.resplit;
  Alcotest.(check bool) "rows re-balanced onto the rejoined GPU" true
    (sp.Load_balancer.gpu_rows > 0)

(* The same storm under the default policy: the infinite re-probe
   cooldown keeps the historical behaviour — quarantine is final. *)
let test_resilient_reprobe_default_off () =
  let e = Engine.create (storm ~gpu:(rel ~transient:1.0 ~heals:0.05 ()) ()) in
  let r = Resilient.create e in
  let prev = ref Engine.ready in
  for _ = 1 to 30 do
    prev := Resilient.submit r ~deps:[ !prev ] Engine.Gpu (gemm 1000)
  done;
  let s = Resilient.stats r in
  Alcotest.(check int) "no probes at the default infinite cooldown" 0
    s.Resilient.reprobes;
  Alcotest.(check int) "no rejoins" 0 s.Resilient.rejoins;
  Alcotest.(check int) "quarantine stays final" 0
    s.Resilient.gpu.Resilient.completed;
  Alcotest.(check bool) "still degraded" true (Resilient.gpu_unavailable r)

(* ------------------------------------------------------------------ *)
(* Adaptive load balancer                                              *)
(* ------------------------------------------------------------------ *)

let lb_gemm = gemm 2048

(* Clean observations are the EWMA fixpoint: every window sample is
   exactly 1.0, so the share never moves off the cost model's static
   split and no resplit is ever applied — the bitwise Adaptive=Static
   guarantee the schedules rely on. *)
let test_balancer_clean_fixpoint () =
  let b = Load_balancer.create m in
  let s0 = Cost_model.gpu_share m lb_gemm in
  for i = 1 to 20 do
    Load_balancer.observe b Engine.Gpu ~useful_s:0.002 ~wasted_s:0.;
    Load_balancer.observe b Engine.Cpu ~useful_s:0.02 ~wasted_s:0.;
    let sp = Load_balancer.tick b ~kernel:lb_gemm ~rows:10 in
    Alcotest.(check bool)
      (Printf.sprintf "tick %d keeps the static share" i)
      true
      (Float.equal sp.Load_balancer.share s0);
    Alcotest.(check bool) "no resplit" false sp.Load_balancer.resplit
  done;
  let (e_cpu, e_gpu), (a_cpu, a_gpu) = Load_balancer.efficiencies b in
  Alcotest.(check bool) "efficiencies pinned at the 1.0 fixpoint" true
    (e_cpu = 1.0 && e_gpu = 1.0 && a_cpu = 1.0 && a_gpu = 1.0);
  Alcotest.(check int) "no resplits" 0 (Load_balancer.resplits b)

let test_balancer_static_inert () =
  let b = Load_balancer.create ~config:Load_balancer.static_config m in
  Load_balancer.observe b Engine.Gpu ~useful_s:0. ~wasted_s:5.0;
  let sp = Load_balancer.tick b ~kernel:lb_gemm ~rows:8 in
  Alcotest.(check bool) "share stays static" true
    (Float.equal sp.Load_balancer.share (Cost_model.gpu_share m lb_gemm));
  Alcotest.(check bool) "never resplits" false sp.Load_balancer.resplit;
  Load_balancer.gpu_down b;
  let sp2 = Load_balancer.tick b ~kernel:lb_gemm ~rows:8 in
  Alcotest.(check bool) "gpu_down is a no-op in static mode" true
    (sp2.Load_balancer.gpu_rows > 0)

(* The window estimator weights by time, not by kernel count: 100 tiny
   mostly-wasted ops plus one big clean GEMM fold into a single sample
   of total_useful / total_time, so the swarm cannot outvote the GEMM. *)
let test_balancer_time_weighted_window () =
  let b = Load_balancer.create m in
  for _ = 1 to 100 do
    Load_balancer.observe b Engine.Gpu ~useful_s:1e-4 ~wasted_s:1e-3
  done;
  Load_balancer.observe b Engine.Gpu ~useful_s:1.0 ~wasted_s:0.;
  let (_ : Load_balancer.split) =
    Load_balancer.tick b ~kernel:lb_gemm ~rows:10
  in
  let (_, e_gpu), _ = Load_balancer.efficiencies b in
  let sample = 1.01 /. 1.11 in
  let alpha = Load_balancer.default_config.Load_balancer.ewma_alpha in
  Alcotest.check
    (Alcotest.float 1e-9)
    "one time-weighted sample per window"
    ((1. -. alpha) +. (alpha *. sample))
    e_gpu

(* A misbehaving GPU sheds rows, and the applied share follows the
   documented sqrt-damped formula exactly. *)
let test_balancer_sqrt_damped_shift () =
  let b = Load_balancer.create m in
  for _ = 1 to 5 do
    Load_balancer.observe b Engine.Gpu ~useful_s:0.1 ~wasted_s:0.9;
    Load_balancer.observe b Engine.Cpu ~useful_s:0.5 ~wasted_s:0.;
    ignore (Load_balancer.tick b ~kernel:lb_gemm ~rows:100)
  done;
  Alcotest.(check bool) "resplit applied" true (Load_balancer.resplits b > 0);
  let _, (a_cpu, a_gpu) = Load_balancer.efficiencies b in
  Alcotest.(check bool) "gpu efficiency dropped" true (a_gpu < 1.0);
  let s0 = Cost_model.gpu_share m lb_gemm in
  let wg = s0 *. Float.sqrt a_gpu and wc = (1. -. s0) *. Float.sqrt a_cpu in
  let expected = wg /. (wg +. wc) in
  let sp = Load_balancer.tick b ~kernel:lb_gemm ~rows:100 in
  Alcotest.check (Alcotest.float 1e-9) "sqrt-damped applied share" expected
    sp.Load_balancer.share;
  Alcotest.(check bool) "rows shifted off the sick GPU" true
    (sp.Load_balancer.share < s0);
  Alcotest.(check int) "rows partition exactly" 100
    (sp.Load_balancer.gpu_rows + sp.Load_balancer.cpu_rows)

let test_balancer_down_up () =
  let b = Load_balancer.create m in
  Load_balancer.gpu_down b;
  Alcotest.(check bool) "unavailable" false (Load_balancer.gpu_available b);
  let sp = Load_balancer.tick b ~kernel:lb_gemm ~rows:12 in
  Alcotest.(check int) "all rows on the CPU" 0 sp.Load_balancer.gpu_rows;
  Alcotest.(check int) "cpu takes everything" 12 sp.Load_balancer.cpu_rows;
  Alcotest.(check bool) "forced resplit bypasses the interval" true
    sp.Load_balancer.resplit;
  Load_balancer.gpu_up b;
  Alcotest.(check bool) "available again" true (Load_balancer.gpu_available b);
  let sp2 = Load_balancer.tick b ~kernel:lb_gemm ~rows:12 in
  Alcotest.(check bool) "rejoin forces a resplit" true
    sp2.Load_balancer.resplit;
  (* probe share 1.0: the rejoined device restarts at the static split *)
  Alcotest.(check bool) "restarts at the static share" true
    (Float.equal sp2.Load_balancer.share (Cost_model.gpu_share m lb_gemm))

let test_balancer_config_validation () =
  let bad cfg =
    match Load_balancer.create ~config:cfg m with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad { Load_balancer.default_config with Load_balancer.update_interval = 0 };
  bad { Load_balancer.default_config with Load_balancer.ewma_alpha = 0. };
  bad { Load_balancer.default_config with Load_balancer.ewma_alpha = 1.5 };
  bad { Load_balancer.default_config with Load_balancer.hysteresis = -0.1 };
  bad { Load_balancer.default_config with Load_balancer.probe_share = 2. };
  bad
    {
      Load_balancer.default_config with
      Load_balancer.min_gpu_share = 0.9;
      max_gpu_share = 0.5;
    }

let () =
  Alcotest.run "hetsim"
    [
      ( "machine",
        [
          Alcotest.test_case "presets validate" `Quick test_presets_valid;
          Alcotest.test_case "find" `Quick test_machine_find;
          Alcotest.test_case "paper block sizes" `Quick test_paper_block_sizes;
          Alcotest.test_case "sustained gflops" `Quick test_gflops_sustained;
          Alcotest.test_case "aggregate util" `Quick test_aggregate_util;
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "flop counts" `Quick test_kernel_flops;
          Alcotest.test_case "shapes" `Quick test_kernel_shape;
          Alcotest.test_case "syrk flops" `Quick test_kernel_syrk_flops;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "blas3" `Quick test_blas3_duration;
          Alcotest.test_case "blas2 bw bound" `Quick
            test_blas2_duration_bandwidth_bound;
          Alcotest.test_case "memcpy rejected" `Quick test_memcpy_rejected;
          Alcotest.test_case "batch speedup" `Quick test_batch_speedup;
          Alcotest.test_case "batch serial = sum" `Quick
            test_batch_serial_equals_sum;
          Alcotest.test_case "batch rejects blas3" `Quick
            test_batch_rejects_blas3;
          Alcotest.test_case "background" `Quick test_background_duration;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single op" `Quick test_engine_single_op;
          Alcotest.test_case "resource serialization" `Quick
            test_engine_resource_serialization;
          Alcotest.test_case "cpu/gpu overlap" `Quick test_engine_cpu_gpu_overlap;
          Alcotest.test_case "dependency" `Quick test_engine_dependency;
          Alcotest.test_case "stream order" `Quick test_engine_stream_order;
          Alcotest.test_case "transfer" `Quick test_engine_transfer;
          Alcotest.test_case "join/delay" `Quick test_engine_join_delay;
          Alcotest.test_case "background no block" `Quick
            test_engine_background_does_not_block;
          Alcotest.test_case "batch" `Quick test_engine_batch;
          Alcotest.test_case "phase accounting" `Quick
            test_engine_phase_accounting;
          Alcotest.test_case "busy time" `Quick test_engine_busy_time;
          Alcotest.test_case "records ordered" `Quick
            test_engine_records_ordered;
          Alcotest.test_case "memcpy guard" `Quick test_engine_memcpy_guard;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "utilization empty" `Quick test_utilization_empty;
          Alcotest.test_case "binding summary" `Quick test_binding_summary;
          Alcotest.test_case "binding stream" `Quick test_binding_stream;
          Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
          Alcotest.test_case "gantt empty" `Quick test_gantt_empty;
          Alcotest.test_case "gantt narrow width" `Quick test_gantt_narrow;
          Alcotest.test_case "chrome trace escaping" `Quick
            test_chrome_trace_escaping;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "transient charges full duration" `Quick
            test_failure_transient_duration;
          Alcotest.test_case "hang charges the watchdog timeout" `Quick
            test_failure_hang_timeout;
          Alcotest.test_case "dropout latches" `Quick test_failure_dropout_latches;
          Alcotest.test_case "pass-through exact" `Quick
            test_resilient_passthrough_exact;
          Alcotest.test_case "retry recovers" `Quick test_resilient_retry_recovers;
          Alcotest.test_case "backoff schedule" `Quick
            test_resilient_backoff_schedule;
          Alcotest.test_case "quarantine reroutes" `Quick
            test_resilient_quarantine_reroutes;
          Alcotest.test_case "corrupted transfer not retried" `Quick
            test_resilient_corrupted_transfer;
          Alcotest.test_case "cpu exhaustion gives up" `Quick
            test_resilient_gave_up;
          Alcotest.test_case "seeded determinism" `Quick
            test_resilient_deterministic;
          Alcotest.test_case "re-probe rejoins a healed GPU" `Quick
            test_resilient_reprobe_rejoins;
          Alcotest.test_case "re-probe default-off keeps quarantine final"
            `Quick test_resilient_reprobe_default_off;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "clean fixpoint matches static" `Quick
            test_balancer_clean_fixpoint;
          Alcotest.test_case "static mode is inert" `Quick
            test_balancer_static_inert;
          Alcotest.test_case "time-weighted window" `Quick
            test_balancer_time_weighted_window;
          Alcotest.test_case "sqrt-damped shift" `Quick
            test_balancer_sqrt_damped_shift;
          Alcotest.test_case "gpu down/up forcing" `Quick
            test_balancer_down_up;
          Alcotest.test_case "config validation" `Quick
            test_balancer_config_validation;
        ] );
      ("properties", props);
    ]
