(* Cross-module integration tests: full pipelines over matrix + fault +
   abft + cholesky + hetsim, structural consistency between the numeric
   driver and the verification-set formulas, and sanity of the
   simulated experiment shapes at test scale. *)

open Matrix
module C = Cholesky

let tb = Hetsim.Machine.testbench

(* ------------------------------------------------------------------ *)
(* Verification-count bookkeeping: the numeric driver must perform      *)
(* exactly the verifications the Sets module prescribes.                *)
(* ------------------------------------------------------------------ *)

let expected_enhanced_verifications ~grid ~k =
  let total = ref 0 in
  let add l = total := !total + List.length l in
  for j = 0 to grid - 1 do
    let gate = C.Sets.k_gate ~k ~j in
    if C.Sets.syrk_exists ~j then add (C.Sets.pre_syrk ~j);
    add (C.Sets.pre_potf2 ~j);
    if C.Sets.gemm_exists ~grid ~j && gate then add (C.Sets.pre_gemm ~grid ~j);
    if C.Sets.trsm_exists ~grid ~j && gate then add (C.Sets.pre_trsm ~grid ~j)
  done;
  !total

let expected_online_verifications ~grid =
  let total = ref 0 in
  let add l = total := !total + List.length l in
  for j = 0 to grid - 1 do
    if C.Sets.syrk_exists ~j then add (C.Sets.post_syrk ~j);
    add (C.Sets.post_potf2 ~j);
    if C.Sets.gemm_exists ~grid ~j then add (C.Sets.post_gemm ~grid ~j);
    if C.Sets.trsm_exists ~grid ~j then add (C.Sets.post_trsm ~grid ~j)
  done;
  !total

let test_verification_counts_match_sets () =
  let block = 8 in
  List.iter
    (fun grid ->
      let n = grid * block in
      let a = Spd.random_spd ~seed:grid n in
      List.iter
        (fun k ->
          let cfg =
            C.Config.make ~machine:tb ~block
              ~scheme:(Abft.Scheme.enhanced ~k ()) ()
          in
          let r = C.Ft.factor cfg a in
          Alcotest.(check int)
            (Printf.sprintf "enhanced g=%d k=%d" grid k)
            (expected_enhanced_verifications ~grid ~k)
            r.C.Ft.stats.C.Ft.verifications)
        [ 1; 2; 3 ];
      let cfg = C.Config.make ~machine:tb ~block ~scheme:Abft.Scheme.Online () in
      let r = C.Ft.factor cfg a in
      Alcotest.(check int)
        (Printf.sprintf "online g=%d" grid)
        (expected_online_verifications ~grid)
        r.C.Ft.stats.C.Ft.verifications;
      (* Offline verifies each lower tile exactly once, at the end. *)
      let cfg = C.Config.make ~machine:tb ~block ~scheme:Abft.Scheme.Offline () in
      let r = C.Ft.factor cfg a in
      Alcotest.(check int)
        (Printf.sprintf "offline g=%d" grid)
        (grid * (grid + 1) / 2)
        r.C.Ft.stats.C.Ft.verifications)
    [ 2; 4; 6 ]

(* ------------------------------------------------------------------ *)
(* End-to-end solve pipeline under a fault storm                        *)
(* ------------------------------------------------------------------ *)

let test_solve_pipeline_under_storm () =
  let grid = 6 and block = 8 in
  let n = grid * block in
  let a = Spd.random_spd ~seed:5 n in
  let x_true = Spd.random ~seed:6 n 3 in
  let b = Blas3.gemm_alloc a x_true in
  let plan =
    Fault.random_plan ~covered_only:true ~seed:21 ~grid ~block ~count:5
      ~storage_fraction:0.6 ()
  in
  let cfg = C.Config.make ~machine:tb ~block () in
  let r = C.Ft.factor ~plan cfg a in
  Alcotest.(check bool) "factor ok" true (r.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "faults actually fired" true
    (List.length r.C.Ft.injections_fired >= 4);
  let x = Mat.copy b in
  Lapack.potrs Types.Lower r.C.Ft.factor x;
  Alcotest.(check bool) "solution accurate despite storm" true
    (Mat.approx_equal ~tol:1e-6 x_true x)

let test_every_scheme_ends_with_usable_factor_or_says_so () =
  (* Whatever a scheme can or cannot correct, the report's outcome must
     be consistent with the actual residual — no lying. *)
  let grid = 5 and block = 8 in
  let a = Spd.random_spd ~seed:8 (grid * block) in
  List.iter
    (fun scheme ->
      List.iter
        (fun seed ->
          let plan =
            Fault.random_plan ~seed ~grid ~block ~count:2 ~storage_fraction:0.5 ()
          in
          let cfg = C.Config.make ~machine:tb ~block ~scheme () in
          let r = C.Ft.factor ~plan cfg a in
          match r.C.Ft.outcome with
          | C.Ft.Success ->
              Alcotest.(check bool) "residual small" true
                (r.C.Ft.residual <= C.Ft.residual_threshold)
          | C.Ft.Silent_corruption ->
              Alcotest.(check bool) "residual large" true
                (r.C.Ft.residual > C.Ft.residual_threshold)
          | C.Ft.Gave_up _ -> ())
        [ 1; 2; 3; 4; 5 ])
    Abft.Scheme.all

(* ------------------------------------------------------------------ *)
(* Simulated experiment shapes at test scale                            *)
(* ------------------------------------------------------------------ *)

let test_overhead_decreases_with_n () =
  let machine = Hetsim.Machine.tardis in
  let overhead n =
    let base =
      (C.Schedule.run (C.Config.make ~machine ~scheme:Abft.Scheme.No_ft ()) ~n)
        .C.Schedule.makespan
    in
    let enh =
      (C.Schedule.run (C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ()) ~n)
        .C.Schedule.makespan
    in
    (enh -. base) /. base
  in
  let o1 = overhead 2560 and o2 = overhead 7680 and o3 = overhead 15360 in
  Alcotest.(check bool) "decreasing" true (o1 > o2 && o2 > o3);
  (* ... and stays above the flop-count asymptote. *)
  let asym =
    Abft.Overhead_model.asymptote_enhanced
      { Abft.Overhead_model.n = 15360; b = 256; k = 1 }
  in
  Alcotest.(check bool) "above asymptote" true (o3 > asym)

let test_gflops_increase_with_n () =
  let machine = Hetsim.Machine.bulldozer64 in
  let gf n =
    (C.Schedule.run (C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ()) ~n)
      .C.Schedule.gflops
  in
  Alcotest.(check bool) "monotone" true (gf 4096 < gf 8192 && gf 8192 < gf 16384)

let test_cula_always_slowest () =
  List.iter
    (fun n ->
      let machine = Hetsim.Machine.tardis in
      let enh =
        (C.Schedule.run (C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ()) ~n)
          .C.Schedule.gflops
      in
      let cula = (C.Cula_model.run machine ~n).C.Cula_model.gflops in
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (cula < enh))
    [ 2560; 5120; 10240; 20480 ]

let test_chrome_trace_wellformed () =
  let r =
    C.Schedule.run
      (C.Config.make ~machine:Hetsim.Machine.tardis ~scheme:(Abft.Scheme.enhanced ()) ())
      ~n:2560
  in
  let s = Hetsim.Engine.to_chrome_trace r.C.Schedule.engine in
  (* crude JSON sanity: one object per op, balanced brackets *)
  let count_char c = String.fold_left (fun a ch -> if ch = c then a + 1 else a) 0 s in
  Alcotest.(check int) "objects = ops"
    (Hetsim.Engine.op_count r.C.Schedule.engine)
    (count_char '{');
  Alcotest.(check int) "balanced" (count_char '{') (count_char '}');
  Alcotest.(check bool) "array" true (s.[0] = '[' && s.[String.length s - 1] = ']')

let test_simulated_times_deterministic () =
  let run () =
    (C.Schedule.run
       (C.Config.make ~machine:Hetsim.Machine.bulldozer64
          ~scheme:(Abft.Scheme.enhanced ()) ())
       ~n:10240)
      .C.Schedule.makespan
  in
  Alcotest.(check (float 0.)) "bitwise reproducible" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Workloads under each scheme                                          *)
(* ------------------------------------------------------------------ *)

let test_workload_all_ft_schemes () =
  let a, b, _ = Workloads.Lstsq.synthetic_problem ~rows:100 ~cols:24 () in
  let results =
    List.map
      (fun scheme ->
        let cfg = C.Config.make ~machine:tb ~block:8 ~scheme () in
        (Workloads.Lstsq.solve ~cfg ~a ~b ()).Workloads.Lstsq.x)
      [ Abft.Scheme.No_ft; Abft.Scheme.Offline; Abft.Scheme.Online;
        Abft.Scheme.enhanced () ]
  in
  match results with
  | x0 :: rest ->
      List.iter
        (fun x ->
          Alcotest.(check bool) "identical across schemes" true
            (Mat.approx_equal ~tol:1e-10 x0 x))
        rest
  | [] -> assert false

let () =
  Alcotest.run "integration"
    [
      ( "bookkeeping",
        [
          Alcotest.test_case "verification counts match Sets" `Quick
            test_verification_counts_match_sets;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "solve under storm" `Quick
            test_solve_pipeline_under_storm;
          Alcotest.test_case "outcome consistent with residual" `Quick
            test_every_scheme_ends_with_usable_factor_or_says_so;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "overhead decreases with n" `Quick
            test_overhead_decreases_with_n;
          Alcotest.test_case "gflops increase with n" `Quick
            test_gflops_increase_with_n;
          Alcotest.test_case "cula slowest" `Quick test_cula_always_slowest;
          Alcotest.test_case "chrome trace wellformed" `Quick
            test_chrome_trace_wellformed;
          Alcotest.test_case "deterministic" `Quick
            test_simulated_times_deterministic;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all schemes agree" `Quick
            test_workload_all_ft_schemes;
        ] );
    ]
