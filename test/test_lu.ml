(* Tests for the FT-LU extension: dual checksums, update rules, and the
   left-looking fault-tolerant driver. *)

open Matrix

let dd n = Lapack.diag_dominant ~seed:(n + 7) n

let expect name want (r : Ftlu.Ft_lu.report) =
  Alcotest.(check string) name want
    (Format.asprintf "%a" Ftlu.Ft_lu.pp_outcome r.Ftlu.Ft_lu.outcome
    |> String.split_on_char ':' |> List.hd)

(* ------------------------------------------------------------------ *)
(* LAPACK LU kernels                                                   *)
(* ------------------------------------------------------------------ *)

let test_getf2_reconstructs () =
  let a = dd 12 in
  let packed = Mat.copy a in
  Lapack.getf2 packed;
  let l, u = Lapack.lu_unpack packed in
  Alcotest.(check bool) "LU = A" true
    (Mat.rel_diff (Blas3.gemm_alloc l u) a < 1e-12)

let test_getrf_matches_getf2 () =
  let a = dd 30 in
  let p1 = Mat.copy a and p2 = Mat.copy a in
  Lapack.getf2 p1;
  Lapack.getrf ~block:7 p2;
  Alcotest.(check bool) "blocked = unblocked" true
    (Mat.approx_equal ~tol:1e-9 p1 p2)

let test_getrs_solves () =
  let a = dd 16 in
  let x_true = Spd.random ~seed:9 16 2 in
  let b = Blas3.gemm_alloc a x_true in
  let lu = Mat.copy a in
  Lapack.getrf ~block:4 lu;
  Lapack.getrs lu b;
  Alcotest.(check bool) "solution" true (Mat.approx_equal ~tol:1e-8 x_true b)

let test_getf2_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Lapack.Singular_pivot 1) (fun () ->
      Lapack.getf2 a)

let test_lu_unpack () =
  let packed = Mat.of_arrays [| [| 2.; 3. |]; [| 4.; 5. |] |] in
  let l, u = Lapack.lu_unpack packed in
  Alcotest.(check (float 0.)) "unit diag" 1. (Mat.get l 0 0);
  Alcotest.(check (float 0.)) "l21" 4. (Mat.get l 1 0);
  Alcotest.(check (float 0.)) "u11" 2. (Mat.get u 0 0);
  Alcotest.(check (float 0.)) "u zero below" 0. (Mat.get u 1 0)

(* ------------------------------------------------------------------ *)
(* Duochk                                                              *)
(* ------------------------------------------------------------------ *)

let test_duochk_encode_clean () =
  let a = Spd.random ~seed:1 8 8 in
  let dk = Ftlu.Duochk.encode a in
  Alcotest.(check bool) "col clean" true
    (Ftlu.Duochk.verify_col dk a = Abft.Verify.Clean);
  Alcotest.(check bool) "row clean" true
    (Ftlu.Duochk.verify_row dk a = Abft.Verify.Clean)

let test_duochk_row_verify_locates () =
  let a = Spd.random ~seed:2 8 8 in
  let pristine = Mat.copy a in
  let dk = Ftlu.Duochk.encode a in
  Mat.set a 3 6 (Mat.get a 3 6 +. 500.);
  (match Ftlu.Duochk.verify_row dk a with
  | Abft.Verify.Corrected [ f ] ->
      (* coordinates reported in tile orientation *)
      Alcotest.(check int) "row" 3 f.Abft.Verify.row;
      Alcotest.(check int) "col" 6 f.Abft.Verify.col
  | o -> Alcotest.failf "expected corrected, got %a" Abft.Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_duochk_row_corrects_row_burst () =
  (* A whole corrupted row: one error per *column* — exactly what row
     checksums cannot fix but column checksums can, and vice versa: a
     corrupted row has one error per column... for ROW checksums it is
     multiple errors in one transposed column. Use a corrupted COLUMN,
     which the row side sees as one error per row and repairs. *)
  let a = Spd.random ~seed:3 6 6 in
  let pristine = Mat.copy a in
  let dk = Ftlu.Duochk.encode a in
  for i = 0 to 5 do
    Mat.set a i 2 (Mat.get a i 2 +. (50. *. float_of_int (i + 1)))
  done;
  (match Ftlu.Duochk.verify_row dk a with
  | Abft.Verify.Corrected fixes -> Alcotest.(check int) "six" 6 (List.length fixes)
  | o -> Alcotest.failf "expected corrected, got %a" Abft.Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine a)

let test_duochk_gemm_rule () =
  let c = Spd.random ~seed:4 6 6 in
  let l = Spd.random ~seed:5 6 6 and u = Spd.random ~seed:6 6 6 in
  let ck = Ftlu.Duochk.encode c in
  let lk = Ftlu.Duochk.encode l and uk = Ftlu.Duochk.encode u in
  Blas3.gemm ~alpha:(-1.) ~beta:1. l u c;
  Ftlu.Duochk.gemm ~c:ck ~l_chk:lk ~u_chk:uk ~l ~u;
  Alcotest.(check bool) "col side" true
    (Ftlu.Duochk.verify_col ~tol:1e-7 ck c = Abft.Verify.Clean);
  Alcotest.(check bool) "row side" true
    (Ftlu.Duochk.verify_row ~tol:1e-7 ck c = Abft.Verify.Clean)

let test_duochk_getf2_rule () =
  let a = dd 8 in
  let dk = Ftlu.Duochk.encode a in
  let packed = Mat.copy a in
  Lapack.getf2 packed;
  Ftlu.Duochk.getf2 dk ~lu_packed:packed;
  let l, u = Lapack.lu_unpack packed in
  Alcotest.(check bool) "chk(L) consistent" true
    (Abft.Verify.check ~tol:1e-7 (Ftlu.Duochk.col dk) l);
  Alcotest.(check bool) "chk(U) consistent" true
    (Abft.Verify.check ~tol:1e-7 (Ftlu.Duochk.row dk) (Mat.transpose u))

let test_duochk_panel_rules () =
  let a = dd 8 in
  let packed = Mat.copy a in
  Lapack.getf2 packed;
  let l_diag, u_diag = Lapack.lu_unpack packed in
  (* column panel *)
  let cp = Spd.random ~seed:7 8 8 in
  let cpk = Ftlu.Duochk.encode cp in
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u_diag cp;
  Ftlu.Duochk.col_panel cpk ~u_diag;
  Alcotest.(check bool) "col panel" true
    (Abft.Verify.check ~tol:1e-6 (Ftlu.Duochk.col cpk) cp);
  (* row panel *)
  let rp = Spd.random ~seed:8 8 8 in
  let rpk = Ftlu.Duochk.encode rp in
  Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Unit_diag l_diag rp;
  Ftlu.Duochk.row_panel rpk ~l_diag;
  Alcotest.(check bool) "row panel" true
    (Abft.Verify.check ~tol:1e-6 (Ftlu.Duochk.row rpk) (Mat.transpose rp))

(* ------------------------------------------------------------------ *)
(* FT-LU driver                                                        *)
(* ------------------------------------------------------------------ *)

let test_ftlu_clean_all_schemes () =
  let a = dd 48 in
  let lu = Mat.copy a in
  Lapack.getrf ~block:8 lu;
  let lref, uref = Lapack.lu_unpack lu in
  List.iter
    (fun scheme ->
      let r = Ftlu.Ft_lu.factor ~scheme ~block:8 a in
      expect (Abft.Scheme.name scheme) "success" r;
      Alcotest.(check bool) "L matches" true
        (Mat.approx_equal ~tol:1e-8 lref r.Ftlu.Ft_lu.l);
      Alcotest.(check bool) "U matches" true
        (Mat.approx_equal ~tol:1e-8 uref r.Ftlu.Ft_lu.u))
    Abft.Scheme.all

let bitwise_equal a b =
  let m = Mat.rows a and n = Mat.cols a in
  Mat.rows b = m && Mat.cols b = n
  &&
  try
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        if
          Int64.bits_of_float (Mat.get a i j)
          <> Int64.bits_of_float (Mat.get b i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

let test_ftlu_fused_bitwise () =
  (* The column chains ride the tile GEMM/TRSM when fused; the carried
     sums replay the separate passes' FP additions in order, so both
     factors must come out bit-for-bit identical. *)
  let a = dd 48 in
  let sep = Ftlu.Ft_lu.factor ~fused:false ~block:8 a in
  let fus = Ftlu.Ft_lu.factor ~fused:true ~block:8 a in
  Alcotest.(check bool) "L bitwise" true (bitwise_equal sep.Ftlu.Ft_lu.l fus.Ftlu.Ft_lu.l);
  Alcotest.(check bool) "U bitwise" true (bitwise_equal sep.Ftlu.Ft_lu.u fus.Ftlu.Ft_lu.u)

let test_ftlu_fused_detection_parity () =
  (* A trailing-update computing error must be corrected whether or not
     the column chains are fused into the kernels. *)
  let plan =
    [
      Fault.computing_error ~delta:1e4 ~iteration:1 ~op:Fault.Gemm ~block:(5, 1)
        ~element:(2, 2) ();
    ]
  in
  List.iter
    (fun fused ->
      let tag = if fused then "fused" else "separate" in
      let r = Ftlu.Ft_lu.factor ~plan ~fused ~block:8 (dd 48) in
      expect tag "success" r;
      Alcotest.(check int) (tag ^ " no restart") 0
        r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts)
    [ false; true ]

let test_ftlu_storage_error_in_l () =
  (* L(4,0) flips at iteration 2, read again by the lazy updates. *)
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:2 ~block:(4, 0) ~element:(3, 3) () ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~block:8 (dd 48) in
  expect "corrected before read" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts;
  Alcotest.(check bool) "corrections" true
    (r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.corrections > 0)

let test_ftlu_storage_error_in_u () =
  (* U(0,4) flips at iteration 2 — located via the ROW checksums. *)
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:2 ~block:(0, 4) ~element:(2, 5) () ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~block:8 (dd 48) in
  expect "corrected before read" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts;
  Alcotest.(check bool) "corrections" true
    (r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.corrections > 0)

let test_ftlu_computing_error_col_panel () =
  let plan =
    [
      Fault.computing_error ~delta:1e4 ~iteration:1 ~op:Fault.Gemm ~block:(5, 1)
        ~element:(2, 2) ();
    ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~block:8 (dd 48) in
  expect "corrected" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts

let test_ftlu_computing_error_row_panel_trsm () =
  let plan =
    [
      Fault.computing_error ~delta:2e3 ~iteration:1 ~op:Fault.Trsm ~block:(1, 5)
        ~element:(4, 4) ();
    ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~block:8 (dd 48) in
  expect "corrected" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts

let test_ftlu_no_ft_silent () =
  let plan =
    [
      Fault.computing_error ~delta:0.05 ~iteration:1 ~op:Fault.Trsm ~block:(5, 1)
        ~element:(2, 2) ();
    ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~scheme:Abft.Scheme.No_ft ~block:8 (dd 48) in
  expect "silently wrong" "silent corruption" r

let test_ftlu_offline_detects_and_redoes () =
  let plan =
    [
      Fault.computing_error ~delta:1e3 ~iteration:1 ~op:Fault.Trsm ~block:(5, 1)
        ~element:(2, 2) ();
    ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~scheme:Abft.Scheme.Offline ~block:8 (dd 48) in
  expect "recovered by redo" "success" r;
  Alcotest.(check int) "one restart" 1 r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts

let test_ftlu_online_corrects_computing () =
  let plan =
    [
      Fault.computing_error ~delta:1e3 ~iteration:1 ~op:Fault.Trsm ~block:(5, 1)
        ~element:(2, 2) ();
    ]
  in
  let r = Ftlu.Ft_lu.factor ~plan ~scheme:Abft.Scheme.Online ~block:8 (dd 48) in
  expect "corrected post-update" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.restarts

let test_ftlu_fail_stop_recovery () =
  (* Zero the pivot right after the diagonal tile's lazy update (the
     Syrk-analogue window), just before GETF2 reads it: without pre-read
     verification the factorization fail-stops; Enhanced's always-on
     diagonal verification corrects it first. *)
  let zero_pivot =
    {
      Fault.iteration = 3;
      window = Fault.In_computation Fault.Syrk;
      block = (3, 3);
      element = (0, 0);
      kind = Fault.Value_set { value = 0. };
    }
  in
  let enhanced = Ftlu.Ft_lu.factor ~plan:[ zero_pivot ] ~block:8 (dd 48) in
  expect "enhanced avoids fail-stop" "success" enhanced;
  Alcotest.(check int) "no fail-stop" 0
    enhanced.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.fail_stops;
  let offline =
    Ftlu.Ft_lu.factor ~plan:[ zero_pivot ] ~scheme:Abft.Scheme.Offline ~block:8
      (dd 48)
  in
  expect "offline fail-stops then recovers" "success" offline;
  Alcotest.(check bool) "fail-stop recorded" true
    (offline.Ftlu.Ft_lu.stats.Ftlu.Ft_lu.fail_stops > 0)

let test_ftlu_k_gating () =
  let a = dd 64 in
  let v k =
    (Ftlu.Ft_lu.factor ~scheme:(Abft.Scheme.enhanced ~k ()) ~block:8 a)
      .Ftlu.Ft_lu.stats.Ftlu.Ft_lu.verifications
  in
  Alcotest.(check bool) "k=3 verifies less" true (v 3 < v 1)

let test_ftlu_validation () =
  Alcotest.(check bool) "not square" true
    (try
       ignore (Ftlu.Ft_lu.factor (Spd.random ~seed:1 8 16));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad block" true
    (try
       ignore (Ftlu.Ft_lu.factor ~block:7 (dd 48));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Timing mode                                                          *)
(* ------------------------------------------------------------------ *)

let lu_sched ?plan scheme n =
  let cfg = Cholesky.Config.make ~machine:Hetsim.Machine.tardis ~scheme () in
  Ftlu.Schedule_lu.run ?plan cfg ~n

let test_sched_scheme_ordering () =
  let t scheme = (lu_sched scheme 8192).Ftlu.Schedule_lu.makespan in
  let none = t Abft.Scheme.No_ft in
  let offline = t Abft.Scheme.Offline in
  let online = t Abft.Scheme.Online in
  let enhanced = t (Abft.Scheme.enhanced ()) in
  Alcotest.(check bool) "offline > none" true (offline > none);
  Alcotest.(check bool) "online > offline" true (online > offline);
  Alcotest.(check bool) "enhanced > online" true (enhanced > online);
  Alcotest.(check bool) "enhanced within 15%" true (enhanced < none *. 1.15)

let test_sched_lu_roughly_double_cholesky () =
  (* LU does 2n^3/3 flops vs n^3/3: about 2x the time, same machine. *)
  let n = 8192 in
  let lu = (lu_sched Abft.Scheme.No_ft n).Ftlu.Schedule_lu.makespan in
  let chol =
    (Cholesky.Schedule.run
       (Cholesky.Config.make ~machine:Hetsim.Machine.tardis
          ~scheme:Abft.Scheme.No_ft ())
       ~n)
      .Cholesky.Schedule.makespan
  in
  let ratio = lu /. chol in
  Alcotest.(check bool) "about 2x" true (ratio > 1.8 && ratio < 2.2)

let test_sched_fault_rerun () =
  let storage =
    [ Fault.storage_error ~iteration:3 ~block:(5, 1) ~element:(0, 0) () ]
  in
  let clean = lu_sched Abft.Scheme.Online 4096 in
  let faulty = lu_sched ~plan:storage Abft.Scheme.Online 4096 in
  Alcotest.(check int) "rerun" 1 faulty.Ftlu.Schedule_lu.reruns;
  let ratio =
    faulty.Ftlu.Schedule_lu.makespan /. clean.Ftlu.Schedule_lu.makespan
  in
  Alcotest.(check bool) "about 2x" true (ratio > 1.9 && ratio < 2.1);
  let enhanced = lu_sched ~plan:storage (Abft.Scheme.enhanced ()) 4096 in
  Alcotest.(check int) "enhanced absorbs" 0 enhanced.Ftlu.Schedule_lu.reruns

let test_sched_k_reduces_time () =
  let t k = (lu_sched (Abft.Scheme.enhanced ~k ()) 8192).Ftlu.Schedule_lu.makespan in
  Alcotest.(check bool) "k=3 < k=1" true (t 3 < t 1)

let test_sched_validation () =
  Alcotest.(check bool) "bad n" true
    (try
       ignore (lu_sched Abft.Scheme.No_ft 1000);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_ftlu_reconstructs =
  QCheck.Test.make ~name:"ft-lu: L.U ~ A for random diag-dominant" ~count:25
    QCheck.(pair (int_range 2 6) (int_range 0 1000))
    (fun (g, seed) ->
      let block = 5 in
      let a = Lapack.diag_dominant ~seed (g * block) in
      let r = Ftlu.Ft_lu.factor ~block a in
      r.Ftlu.Ft_lu.outcome = Ftlu.Ft_lu.Success
      && r.Ftlu.Ft_lu.residual < 1e-10)

let prop_ftlu_single_storage_corrected =
  QCheck.Test.make
    ~name:"ft-lu: storage flip in a factored panel is corrected" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g = 5 and block = 6 in
      (* target a panel tile (i,c), i<>c, flipped while still re-read:
         the last read of L(i,c)/U(c,i) is at iteration max(i,c) *)
      let c = Random.State.int st (g - 1) in
      let i = c + 1 + Random.State.int st (g - 1 - c) in
      let flip_l = Random.State.bool st in
      let blockco = if flip_l then (i, c) else (c, i) in
      let it = c + 1 + Random.State.int st (i - c) in
      let plan =
        [
          Fault.storage_error ~bit:52 ~iteration:it ~block:blockco
            ~element:(Random.State.int st block, Random.State.int st block)
            ();
        ]
      in
      let a = Lapack.diag_dominant ~seed:(seed + 5) (g * block) in
      let r = Ftlu.Ft_lu.factor ~plan ~block a in
      r.Ftlu.Ft_lu.outcome = Ftlu.Ft_lu.Success)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ftlu_reconstructs; prop_ftlu_single_storage_corrected ]

let () =
  Alcotest.run "lu"
    [
      ( "lapack_lu",
        [
          Alcotest.test_case "getf2 reconstructs" `Quick test_getf2_reconstructs;
          Alcotest.test_case "getrf = getf2" `Quick test_getrf_matches_getf2;
          Alcotest.test_case "getrs" `Quick test_getrs_solves;
          Alcotest.test_case "singular pivot" `Quick test_getf2_singular;
          Alcotest.test_case "lu_unpack" `Quick test_lu_unpack;
        ] );
      ( "duochk",
        [
          Alcotest.test_case "encode clean" `Quick test_duochk_encode_clean;
          Alcotest.test_case "row verify locates" `Quick
            test_duochk_row_verify_locates;
          Alcotest.test_case "row corrects column burst" `Quick
            test_duochk_row_corrects_row_burst;
          Alcotest.test_case "gemm rule" `Quick test_duochk_gemm_rule;
          Alcotest.test_case "getf2 rule" `Quick test_duochk_getf2_rule;
          Alcotest.test_case "panel rules" `Quick test_duochk_panel_rules;
        ] );
      ( "ft_lu",
        [
          Alcotest.test_case "clean, all schemes" `Quick
            test_ftlu_clean_all_schemes;
          Alcotest.test_case "storage error in L" `Quick
            test_ftlu_storage_error_in_l;
          Alcotest.test_case "storage error in U" `Quick
            test_ftlu_storage_error_in_u;
          Alcotest.test_case "computing error (col panel)" `Quick
            test_ftlu_computing_error_col_panel;
          Alcotest.test_case "computing error (row trsm)" `Quick
            test_ftlu_computing_error_row_panel_trsm;
          Alcotest.test_case "no_ft silent" `Quick test_ftlu_no_ft_silent;
          Alcotest.test_case "offline redoes" `Quick
            test_ftlu_offline_detects_and_redoes;
          Alcotest.test_case "online corrects computing" `Quick
            test_ftlu_online_corrects_computing;
          Alcotest.test_case "fail-stop recovery" `Quick
            test_ftlu_fail_stop_recovery;
          Alcotest.test_case "k gating" `Quick test_ftlu_k_gating;
          Alcotest.test_case "validation" `Quick test_ftlu_validation;
          Alcotest.test_case "fused factors bitwise = separate" `Quick
            test_ftlu_fused_bitwise;
          Alcotest.test_case "fused detection parity" `Quick
            test_ftlu_fused_detection_parity;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "scheme ordering" `Quick test_sched_scheme_ordering;
          Alcotest.test_case "~2x cholesky" `Quick
            test_sched_lu_roughly_double_cholesky;
          Alcotest.test_case "fault rerun" `Quick test_sched_fault_rerun;
          Alcotest.test_case "k reduces time" `Quick test_sched_k_reduces_time;
          Alcotest.test_case "validation" `Quick test_sched_validation;
        ] );
      ("properties", props);
    ]
