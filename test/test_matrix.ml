(* Tests for the dense linear-algebra substrate: Vec, Mat, Blas2, Blas3,
   Lapack, Spd, Tile. Reference results are computed with naive
   triple-loop kernels defined locally, so the production kernels are
   checked against an independent implementation. *)

open Matrix

let mat_testable =
  Alcotest.testable Mat.pp (fun a b -> Mat.approx_equal ~tol:1e-9 a b)

let check_mat = Alcotest.check mat_testable
let check_float = Alcotest.check (Alcotest.float 1e-9)

(* Naive reference kernels. *)
let ref_mm a b =
  let m = Mat.rows a and k = Mat.cols a and n = Mat.cols b in
  Mat.init m n (fun i j ->
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (Mat.get a i l *. Mat.get b l j)
      done;
      !acc)

let ref_mv a x =
  Array.init (Mat.rows a) (fun i ->
      let acc = ref 0. in
      for j = 0 to Mat.cols a - 1 do
        acc := !acc +. (Mat.get a i j *. x.(j))
      done;
      !acc)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_constructors () =
  Alcotest.(check (array (float 0.))) "ones" [| 1.; 1.; 1. |] (Vec.ones 3);
  Alcotest.(check (array (float 0.))) "ramp" [| 1.; 2.; 3.; 4. |] (Vec.ramp 4);
  Alcotest.(check (array (float 0.))) "create" [| 0.; 0. |] (Vec.create 2)

let test_vec_axpy_dot () =
  let x = [| 1.; 2.; 3. |] and y = [| 10.; 20.; 30. |] in
  Vec.axpy 2. x y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 12.; 24.; 36. |] y;
  check_float "dot" 14. (Vec.dot x x);
  check_float "asum" 6. (Vec.asum x)

let test_vec_nrm2 () =
  check_float "3-4-5" 5. (Vec.nrm2 [| 3.; 4. |]);
  check_float "empty" 0. (Vec.nrm2 [||]);
  check_float "zero" 0. (Vec.nrm2 [| 0.; 0. |]);
  (* Scaling must prevent overflow for huge components. *)
  let big = 1e300 in
  check_float "no overflow" (big *. sqrt 2.) (Vec.nrm2 [| big; big |])

let test_vec_iamax () =
  Alcotest.(check int) "iamax" 2 (Vec.iamax [| 1.; -2.; 5.; 4. |]);
  Alcotest.(check int) "iamax negative" 1 (Vec.iamax [| 1.; -7.; 5. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Vec.iamax: empty vector")
    (fun () -> ignore (Vec.iamax [||]))

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: length mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_storage_order () =
  (* Column-major: (i,j) at j*rows+i. *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float "a00" 1. (Mat.get a 0 0);
  check_float "a01" 2. (Mat.get a 0 1);
  check_float "a10" 3. (Mat.get a 1 0);
  Alcotest.(check (array (float 0.)))
    "flat data is column-major" [| 1.; 3.; 2.; 4. |]
    (a : Mat.t :> Mat.t).Mat.data

let test_mat_roundtrip () =
  let rows = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let a = Mat.of_arrays rows in
  Alcotest.(check (array (array (float 0.)))) "roundtrip" rows (Mat.to_arrays a)

let test_mat_sub_blit () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = Mat.sub a ~row:1 ~col:2 ~rows:2 ~cols:2 in
  check_mat "sub" (Mat.of_arrays [| [| 12.; 13. |]; [| 22.; 23. |] |]) s;
  let d = Mat.create 4 4 in
  Mat.blit ~src:s ~dst:d ~row:0 ~col:0;
  check_float "blit" 23. (Mat.get d 1 1)

let test_mat_sub_out_of_bounds () =
  let a = Mat.create 3 3 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mat.sub a ~row:2 ~col:2 ~rows:2 ~cols:2);
       false
     with Invalid_argument _ -> true)

let test_mat_transpose () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows at);
  check_float "t(0,1)" 4. (Mat.get at 0 1);
  check_mat "involution" a (Mat.transpose at)

let test_mat_norms () =
  let a = Mat.of_arrays [| [| 1.; -2. |]; [| -3.; 4. |] |] in
  check_float "fro" (sqrt 30.) (Mat.norm_fro a);
  check_float "one" 6. (Mat.norm_one a);
  check_float "inf" 7. (Mat.norm_inf a);
  check_float "max" 4. (Mat.norm_max a)

let test_mat_tri () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_mat "tril" (Mat.of_arrays [| [| 1.; 0. |]; [| 3.; 4. |] |]) (Mat.tril a);
  check_mat "triu unit"
    (Mat.of_arrays [| [| 1.; 2. |]; [| 0.; 1. |] |])
    (Mat.triu ~diag:Types.Unit_diag a)

let test_mat_symmetrize () =
  let a = Mat.of_arrays [| [| 1.; 99. |]; [| 3.; 4. |] |] in
  check_mat "from lower"
    (Mat.of_arrays [| [| 1.; 3. |]; [| 3.; 4. |] |])
    (Mat.symmetrize_from Types.Lower a);
  check_mat "from upper"
    (Mat.of_arrays [| [| 1.; 99. |]; [| 99.; 4. |] |])
    (Mat.symmetrize_from Types.Upper a)

let test_mat_row_col () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 0.))) "row" [| 3.; 4. |] (Mat.row a 1);
  Alcotest.(check (array (float 0.))) "col" [| 2.; 4. |] (Mat.col a 1);
  Mat.set_row a 0 [| 7.; 8. |];
  check_float "set_row" 8. (Mat.get a 0 1)

(* ------------------------------------------------------------------ *)
(* Blas2                                                               *)
(* ------------------------------------------------------------------ *)

let test_gemv_notrans () =
  let a = Spd.random ~seed:1 5 3 in
  let x = Vec.ramp 3 in
  let y = Vec.create 5 in
  Blas2.gemv a x y;
  Alcotest.(check (array (float 1e-12))) "gemv" (ref_mv a x) y

let test_gemv_trans () =
  let a = Spd.random ~seed:2 5 3 in
  let x = Vec.ramp 5 in
  let y = Vec.create 3 in
  Blas2.gemv ~trans:Types.Trans a x y;
  Alcotest.(check (array (float 1e-12))) "gemv^T" (ref_mv (Mat.transpose a) x) y

let test_gemv_alpha_beta () =
  let a = Mat.identity 3 in
  let x = [| 1.; 2.; 3. |] in
  let y = [| 10.; 10.; 10. |] in
  Blas2.gemv ~alpha:2. ~beta:0.5 a x y;
  Alcotest.(check (array (float 1e-12))) "alpha,beta" [| 7.; 9.; 11. |] y

let test_ger () =
  let a = Mat.create 2 3 in
  Blas2.ger ~alpha:2. [| 1.; 2. |] [| 1.; 2.; 3. |] a;
  check_mat "ger" (Mat.of_arrays [| [| 2.; 4.; 6. |]; [| 4.; 8.; 12. |] |]) a

let test_syr () =
  let a = Mat.create 3 3 in
  Blas2.syr Types.Lower [| 1.; 2.; 3. |] a;
  (* Only the lower triangle is written. *)
  check_float "(2,0)" 3. (Mat.get a 2 0);
  check_float "(0,2) untouched" 0. (Mat.get a 0 2);
  check_float "(1,1)" 4. (Mat.get a 1 1)

let test_trsv_all_cases () =
  let l =
    Mat.of_arrays [| [| 2.; 0.; 0. |]; [| 1.; 3.; 0. |]; [| 4.; 5.; 6. |] |]
  in
  let check_case uplo trans name =
    let x0 = [| 1.; 2.; 3. |] in
    let x = Vec.copy x0 in
    Blas2.trsv uplo trans Types.Non_unit_diag l x;
    (* Verify by multiplying back. *)
    let m =
      match uplo with Types.Lower -> Mat.tril l | Types.Upper -> Mat.triu l
    in
    let m = match trans with Types.No_trans -> m | Types.Trans -> Mat.transpose m in
    Alcotest.(check (array (float 1e-10))) name x0 (ref_mv m x)
  in
  check_case Types.Lower Types.No_trans "L";
  check_case Types.Lower Types.Trans "L^T";
  let u = Mat.transpose l in
  let x0 = [| 1.; 2.; 3. |] in
  let x = Vec.copy x0 in
  Blas2.trsv Types.Upper Types.No_trans Types.Non_unit_diag u x;
  Alcotest.(check (array (float 1e-10))) "U" x0 (ref_mv (Mat.triu u) x)

let test_trsv_unit_diag () =
  let l = Mat.of_arrays [| [| 9.; 0. |]; [| 2.; 9. |] |] in
  let x = [| 1.; 4. |] in
  Blas2.trsv Types.Lower Types.No_trans Types.Unit_diag l x;
  (* Unit diagonal: pivots are 1 regardless of the stored 9s. *)
  Alcotest.(check (array (float 1e-12))) "unit diag" [| 1.; 2. |] x

let test_trsv_zero_pivot () =
  let l = Mat.of_arrays [| [| 0. |] |] in
  Alcotest.check_raises "zero pivot" (Failure "trsv: zero pivot") (fun () ->
      Blas2.trsv Types.Lower Types.No_trans Types.Non_unit_diag l [| 1. |])

let test_trmv () =
  let l = Mat.of_arrays [| [| 2.; 0. |]; [| 1.; 3. |] |] in
  let x = [| 1.; 2. |] in
  Blas2.trmv Types.Lower Types.No_trans Types.Non_unit_diag l x;
  Alcotest.(check (array (float 1e-12))) "trmv" [| 2.; 7. |] x

(* ------------------------------------------------------------------ *)
(* Blas3                                                               *)
(* ------------------------------------------------------------------ *)

let test_gemm_basic () =
  let a = Spd.random ~seed:3 4 3 and b = Spd.random ~seed:4 3 5 in
  let c = Mat.create 4 5 in
  Blas3.gemm a b c;
  check_mat "gemm" (ref_mm a b) c

let test_gemm_trans_combinations () =
  let a = Spd.random ~seed:5 3 4 and b = Spd.random ~seed:6 5 3 in
  let c = Mat.create 4 5 in
  Blas3.gemm ~transa:Types.Trans ~transb:Types.Trans a b c;
  check_mat "A^T B^T" (ref_mm (Mat.transpose a) (Mat.transpose b)) c;
  let a2 = Spd.random ~seed:7 4 3 in
  let c2 = Mat.create 4 5 in
  Blas3.gemm ~transb:Types.Trans a2 b c2;
  check_mat "A B^T" (ref_mm a2 (Mat.transpose b)) c2

let test_gemm_alpha_beta () =
  let a = Mat.identity 2 and b = Mat.scalar 2 3. in
  let c = Mat.scalar 2 10. in
  Blas3.gemm ~alpha:2. ~beta:1. a b c;
  check_mat "accumulate" (Mat.scalar 2 16.) c

let test_gemm_mismatch () =
  let a = Mat.create 2 3 and b = Mat.create 2 2 and c = Mat.create 2 2 in
  Alcotest.(check bool) "raises" true
    (try
       Blas3.gemm a b c;
       false
     with Mat.Dimension_mismatch _ -> true)

let test_syrk_lower () =
  let a = Spd.random ~seed:8 4 3 in
  let c = Mat.create 4 4 in
  Blas3.syrk Types.Lower a c;
  let full = ref_mm a (Mat.transpose a) in
  (* Lower triangle must match; strict upper must be untouched (zero). *)
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i >= j then check_float "lower" (Mat.get full i j) (Mat.get c i j)
      else check_float "upper zero" 0. (Mat.get c i j)
    done
  done

let test_syrk_trans_accumulate () =
  let a = Spd.random ~seed:9 3 4 in
  let c0 = Spd.random_spd ~seed:10 4 in
  let c = Mat.copy c0 in
  Blas3.syrk ~trans:Types.Trans ~alpha:(-1.) ~beta:1. Types.Lower a c;
  let expect = Mat.sub_mat c0 (ref_mm (Mat.transpose a) a) in
  for i = 0 to 3 do
    for j = 0 to i do
      check_float "syrk^T acc" (Mat.get expect i j) (Mat.get c i j)
    done
  done

let test_trsm_left_lower () =
  let l = Mat.tril (Spd.random_spd ~seed:11 4) in
  let b0 = Spd.random ~seed:12 4 3 in
  let b = Mat.copy b0 in
  Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Non_unit_diag l b;
  check_mat "L X = B" b0 (ref_mm l b)

let test_trsm_right_lower_trans () =
  (* The exact TRSM of MAGMA's Cholesky: B <- B * L^-T. *)
  let l = Mat.tril (Spd.random_spd ~seed:13 4) in
  let b0 = Spd.random ~seed:14 3 4 in
  let b = Mat.copy b0 in
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag l b;
  check_mat "X L^T = B" b0 (ref_mm b (Mat.transpose l))

let test_trsm_alpha () =
  let l = Mat.identity 3 in
  let b = Mat.scalar 3 4. in
  Blas3.trsm ~alpha:0.5 Types.Left Types.Lower Types.No_trans
    Types.Non_unit_diag l b;
  check_mat "alpha" (Mat.scalar 3 2.) b

let test_trmm_inverts_trsm () =
  let l = Mat.tril (Spd.random_spd ~seed:15 5) in
  let b0 = Spd.random ~seed:16 5 2 in
  let b = Mat.copy b0 in
  Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Non_unit_diag l b;
  Blas3.trmm Types.Left Types.Lower Types.No_trans Types.Non_unit_diag l b;
  check_mat "trmm . trsm = id" b0 b

let test_symm () =
  let a = Spd.random_spd ~seed:17 3 in
  let half = Mat.tril a in
  let b = Spd.random ~seed:18 3 2 in
  let c = Mat.create 3 2 in
  Blas3.symm Types.Left Types.Lower half b c;
  check_mat "symm" (ref_mm a b) c

(* ------------------------------------------------------------------ *)
(* Blas3 fused checksum carry                                          *)
(*                                                                     *)
(* The fused contract is BITWISE: carrying the chains through the      *)
(* kernel must reproduce the separate-pass result exactly (same        *)
(* ascending-l reduction order), because the drivers' rounding         *)
(* thresholds and the cross-replica bitwise compare both rely on it.   *)
(* ------------------------------------------------------------------ *)

let bits_equal name x y =
  Alcotest.(check bool)
    (name ^ " dims")
    true
    (Mat.rows x = Mat.rows y && Mat.cols x = Mat.cols y);
  let same = ref true in
  for j = 0 to Mat.cols x - 1 do
    for i = 0 to Mat.rows x - 1 do
      if
        Int64.bits_of_float (Mat.get x i j)
        <> Int64.bits_of_float (Mat.get y i j)
      then same := false
    done
  done;
  Alcotest.(check bool) name true !same

let rmat seed m n =
  let st = Random.State.make [| seed; m; n |] in
  Mat.init m n (fun _ _ -> Random.State.float st 2. -. 1.)

(* The d-row Vandermonde weights (w_r(i) = (i+1)^r), m×d as
   [chk_reduce] expects. *)
let vander m d =
  Mat.init m d (fun i r ->
      let rec pow acc e = if e = 0 then acc else pow (acc * (i + 1)) (e - 1) in
      float_of_int (pow 1 r))

(* One fused-vs-separate gemm comparison: the fused call must leave
   tile, both chains and the fresh reduction bitwise identical to the
   pre-fusion pipeline (plain gemm + per-replica chain gemms +
   chk_reduce). *)
let check_fused_gemm ?pool ~transa ~transb ~m ~k ~n ~alpha ~beta seed =
  let d = 2 in
  let am, ak = if transa = Types.No_trans then (m, k) else (k, m) in
  let bk, bn = if transb = Types.No_trans then (k, n) else (n, k) in
  let a = rmat seed am ak and b = rmat (seed + 1) bk bn in
  let c0 = rmat (seed + 2) m n in
  let fa = [| rmat (seed + 3) d k; rmat (seed + 4) d k |] in
  let fc0 = [| rmat (seed + 5) d n; rmat (seed + 6) d n |] in
  let c_ref = Mat.copy c0 in
  Blas3.gemm ?pool ~transa ~transb ~alpha ~beta a b c_ref;
  let fc_ref = Array.map Mat.copy fc0 in
  Array.iteri (fun i fc -> Blas3.gemm ~transb ~alpha ~beta fa.(i) b fc) fc_ref;
  let weights = vander m d in
  let fresh_ref = Mat.create d n in
  Blas3.chk_reduce ~weights c_ref ~into:fresh_ref;
  let c = Mat.copy c0 in
  let fc = Array.map Mat.copy fc0 in
  let fresh = Mat.create d n in
  Blas3.gemm ?pool ~transa ~transb ~alpha ~beta
    ~fused:
      {
        Blas3.f_a = fa;
        f_c = fc;
        f_fresh = Some fresh;
        f_weights = Some weights;
      }
    a b c;
  let tag = Printf.sprintf "%dx%dx%d" m k n in
  bits_equal (tag ^ " tile") c_ref c;
  Array.iteri
    (fun i r -> bits_equal (Printf.sprintf "%s chain %d" tag i) r fc.(i))
    fc_ref;
  bits_equal (tag ^ " fresh") fresh_ref fresh

let test_fused_gemm_matches_separate () =
  (* naive fallback, sequential tiled, transposed-a panel, transposed-b
     packing — every dispatch path *)
  check_fused_gemm ~transa:Types.No_trans ~transb:Types.No_trans ~m:12 ~k:12
    ~n:12 ~alpha:(-1.) ~beta:1. 40;
  check_fused_gemm ~transa:Types.No_trans ~transb:Types.No_trans ~m:96 ~k:96
    ~n:160 ~alpha:(-1.) ~beta:1. 41;
  check_fused_gemm ~transa:Types.Trans ~transb:Types.No_trans ~m:96 ~k:96
    ~n:160 ~alpha:1. ~beta:1. 42;
  check_fused_gemm ~transa:Types.No_trans ~transb:Types.Trans ~m:64 ~k:48
    ~n:80 ~alpha:0.5 ~beta:1. 43;
  check_fused_gemm ~transa:Types.Trans ~transb:Types.Trans ~m:48 ~k:48 ~n:48
    ~alpha:(-1.) ~beta:1. 44;
  (* beta = 0 must also reset the chains exactly once *)
  check_fused_gemm ~transa:Types.No_trans ~transb:Types.No_trans ~m:96 ~k:64
    ~n:96 ~alpha:1. ~beta:0. 45

let test_fused_gemm_pool_invariance () =
  (* above par_cutoff: explicit 1-lane and 2-lane pools must agree
     bitwise with each other and with the separate-pass reference *)
  let p1 = Parallel.Pool.create ~domains:1 () in
  let p2 = Parallel.Pool.create ~domains:2 () in
  check_fused_gemm ~pool:p1 ~transa:Types.No_trans ~transb:Types.No_trans
    ~m:144 ~k:144 ~n:144 ~alpha:(-1.) ~beta:1. 46;
  check_fused_gemm ~pool:p2 ~transa:Types.No_trans ~transb:Types.No_trans
    ~m:144 ~k:144 ~n:144 ~alpha:(-1.) ~beta:1. 46;
  Parallel.Pool.shutdown p1;
  Parallel.Pool.shutdown p2

let check_fused_syrk ~trans ~uplo ~n ~k ~alpha ~beta seed =
  let d = 2 in
  let am, ak = if trans = Types.No_trans then (n, k) else (k, n) in
  let a = rmat seed am ak in
  let c0 = rmat (seed + 1) n n in
  let fa = [| rmat (seed + 2) d k; rmat (seed + 3) d k |] in
  let fc0 = [| rmat (seed + 4) d n; rmat (seed + 5) d n |] in
  let c_ref = Mat.copy c0 in
  Blas3.syrk ~trans ~alpha ~beta uplo a c_ref;
  (* separate chain rule: f_c = beta·f_c + alpha·f_a·op(a)ᵀ *)
  let chain_transb =
    if trans = Types.No_trans then Types.Trans else Types.No_trans
  in
  let fc_ref = Array.map Mat.copy fc0 in
  Array.iteri
    (fun i fc -> Blas3.gemm ~transb:chain_transb ~alpha ~beta fa.(i) a fc)
    fc_ref;
  let c = Mat.copy c0 in
  let fc = Array.map Mat.copy fc0 in
  Blas3.syrk ~trans ~alpha ~beta
    ~fused:{ Blas3.f_a = fa; f_c = fc; f_fresh = None; f_weights = None }
    uplo a c;
  let tag = Printf.sprintf "syrk %d k=%d" n k in
  bits_equal (tag ^ " tile") c_ref c;
  Array.iteri
    (fun i r -> bits_equal (Printf.sprintf "%s chain %d" tag i) r fc.(i))
    fc_ref

let test_fused_syrk_matches_separate () =
  check_fused_syrk ~trans:Types.No_trans ~uplo:Types.Lower ~n:12 ~k:12
    ~alpha:(-1.) ~beta:1. 50;
  check_fused_syrk ~trans:Types.No_trans ~uplo:Types.Lower ~n:96 ~k:96
    ~alpha:(-1.) ~beta:1. 51;
  check_fused_syrk ~trans:Types.Trans ~uplo:Types.Lower ~n:96 ~k:64 ~alpha:1.
    ~beta:1. 52;
  check_fused_syrk ~trans:Types.No_trans ~uplo:Types.Upper ~n:80 ~k:80
    ~alpha:(-1.) ~beta:1. 53

let check_fused_trsm ~uplo ~trans ~diag ~bsize ~alpha seed =
  let d = 2 in
  let a =
    let spd = Spd.random_spd ~seed bsize in
    match uplo with Types.Lower -> Mat.tril spd | Types.Upper -> Mat.triu spd
  in
  let b0 = rmat (seed + 1) bsize bsize in
  let fc0 = [| rmat (seed + 2) d bsize; rmat (seed + 3) d bsize |] in
  let b_ref = Mat.copy b0 in
  Blas3.trsm ~alpha Types.Right uplo trans diag a b_ref;
  let fc_ref = Array.map Mat.copy fc0 in
  Array.iter (fun fc -> Blas3.trsm ~alpha Types.Right uplo trans diag a fc) fc_ref;
  let b = Mat.copy b0 in
  let fc = Array.map Mat.copy fc0 in
  Blas3.trsm ~alpha
    ~fused:{ Blas3.f_a = [||]; f_c = fc; f_fresh = None; f_weights = None }
    Types.Right uplo trans diag a b;
  let tag = Printf.sprintf "trsm %d" bsize in
  bits_equal (tag ^ " tile") b_ref b;
  Array.iteri
    (fun i r -> bits_equal (Printf.sprintf "%s chain %d" tag i) r fc.(i))
    fc_ref

let test_fused_trsm_matches_separate () =
  check_fused_trsm ~uplo:Types.Lower ~trans:Types.Trans
    ~diag:Types.Non_unit_diag ~bsize:24 ~alpha:1. 60;
  check_fused_trsm ~uplo:Types.Upper ~trans:Types.No_trans
    ~diag:Types.Non_unit_diag ~bsize:96 ~alpha:1. 61;
  check_fused_trsm ~uplo:Types.Lower ~trans:Types.Trans ~diag:Types.Unit_diag
    ~bsize:48 ~alpha:0.5 62

let test_fused_validation () =
  let a = rmat 70 8 8 and b = rmat 71 8 8 in
  let c = Mat.create 8 8 in
  let bad_chain = rmat 72 2 5 in
  let good = rmat 73 2 8 in
  Alcotest.check_raises "chain shape"
    (Mat.Dimension_mismatch
       "gemm: fused chain 0: chk_a=2x8 chk_c=2x5 for op(a)=8x8 c=8x8")
    (fun () ->
      Blas3.gemm
        ~fused:
          {
            Blas3.f_a = [| good |];
            f_c = [| bad_chain |];
            f_fresh = None;
            f_weights = None;
          }
        a b c);
  Alcotest.(check bool)
    "syrk rejects fresh" true
    (try
       Blas3.syrk
         ~fused:
           {
             Blas3.f_a = [| good |];
             f_c = [| Mat.copy good |];
             f_fresh = Some (Mat.create 2 8);
             f_weights = Some (vander 8 2);
           }
         Types.Lower a c;
       false
     with Invalid_argument _ -> true);
  let l = Mat.tril (Spd.random_spd ~seed:74 8) in
  Alcotest.(check bool)
    "trsm rejects left side" true
    (try
       Blas3.trsm
         ~fused:
           {
             Blas3.f_a = [||];
             f_c = [| Mat.copy good |];
             f_fresh = None;
             f_weights = None;
           }
         Types.Left Types.Lower Types.No_trans Types.Non_unit_diag l
         (Mat.copy c);
       false
     with Invalid_argument _ -> true)

let test_chk_reduce_sym_mirrors () =
  (* reducing the one stored triangle with mirrored reads must be
     bitwise the same as reducing the fully materialized symmetric
     matrix *)
  let n = 33 in
  let full =
    let m = rmat 80 n n in
    Mat.init n n (fun i j -> if i >= j then Mat.get m i j else Mat.get m j i)
  in
  let weights = vander n 2 in
  let want = Mat.create 2 n in
  Blas3.chk_reduce ~weights full ~into:want;
  List.iter
    (fun (uplo, keep) ->
      let half =
        Mat.init n n (fun i j ->
            if keep i j then Mat.get full i j else Float.nan)
      in
      let got = Mat.create 2 n in
      Blas3.chk_reduce_sym uplo ~weights half ~into:got;
      bits_equal
        (match uplo with Types.Lower -> "lower" | Types.Upper -> "upper")
        want got)
    [
      (Types.Lower, fun i j -> i >= j);
      (Types.Upper, fun i j -> i <= j);
    ]

(* ------------------------------------------------------------------ *)
(* Lapack                                                              *)
(* ------------------------------------------------------------------ *)

let test_potf2_reconstruct () =
  let a = Spd.random_spd ~seed:19 8 in
  let l = Mat.copy a in
  Lapack.potf2 Types.Lower l;
  let rec_a = ref_mm l (Mat.transpose l) in
  Alcotest.(check bool) "LL^T = A" true (Mat.rel_diff rec_a a < 1e-10)

let test_potf2_upper () =
  let a = Spd.random_spd ~seed:20 6 in
  let u = Mat.copy a in
  Lapack.potf2 Types.Upper u;
  let rec_a = ref_mm (Mat.transpose u) u in
  Alcotest.(check bool) "U^T U = A" true (Mat.rel_diff rec_a a < 1e-10)

let test_potf2_not_spd () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "indefinite" (Lapack.Not_positive_definite 1)
    (fun () -> Lapack.potf2 Types.Lower a)

let test_potf2_zeroes_upper () =
  let a = Spd.random_spd ~seed:21 5 in
  Lapack.potf2 Types.Lower a;
  check_float "upper zeroed" 0. (Mat.get a 0 4)

let test_potrf_matches_potf2 () =
  let a = Spd.random_spd ~seed:22 20 in
  let l1 = Mat.copy a and l2 = Mat.copy a in
  Lapack.potf2 Types.Lower l1;
  Lapack.potrf ~block:4 Types.Lower l2;
  Alcotest.(check bool) "blocked = unblocked" true
    (Mat.approx_equal ~tol:1e-8 l1 l2)

let test_potrf_odd_block () =
  (* Block size not dividing n must still work. *)
  let a = Spd.random_spd ~seed:23 13 in
  let l = Mat.copy a in
  Lapack.potrf ~block:5 Types.Lower l;
  Alcotest.(check bool) "LL^T = A" true
    (Mat.rel_diff (ref_mm l (Mat.transpose l)) a < 1e-9)

let test_potrf_reports_global_index () =
  let a = Spd.random_spd ~seed:24 8 in
  (* Poison the diagonal inside the second block. *)
  Mat.set a 6 6 (-1e6);
  let got =
    try
      Lapack.potrf ~block:4 Types.Lower a;
      -1
    with Lapack.Not_positive_definite k -> k
  in
  Alcotest.(check int) "failing column index" 6 got

let test_potrs () =
  let a = Spd.random_spd ~seed:25 7 in
  let x_true = Spd.random ~seed:26 7 2 in
  let b = ref_mm a x_true in
  let l = Lapack.cholesky a in
  let x = Mat.copy b in
  Lapack.potrs Types.Lower l x;
  Alcotest.(check bool) "solve" true (Mat.approx_equal ~tol:1e-7 x_true x)

let test_solve_spd () =
  let a = Spd.random_spd ~seed:27 6 in
  let x_true = Spd.random ~seed:28 6 1 in
  let b = ref_mm a x_true in
  let x = Lapack.solve_spd a b in
  Alcotest.(check bool) "solve_spd" true (Mat.approx_equal ~tol:1e-7 x_true x)

let test_log_det () =
  let d = Spd.diag [| 2.; 3.; 4. |] in
  check_float "logdet diag" (log 24.) (Lapack.log_det_spd d)

let test_cholesky_laplacian () =
  let a = Spd.tridiag_laplacian 10 in
  let l = Lapack.cholesky a in
  Alcotest.(check bool) "laplacian" true
    (Mat.rel_diff (ref_mm l (Mat.transpose l)) a < 1e-12)

(* ------------------------------------------------------------------ *)
(* Spd generators                                                      *)
(* ------------------------------------------------------------------ *)

let test_spd_is_spd () =
  let a = Spd.random_spd ~seed:29 12 in
  Alcotest.(check bool) "symmetric" true
    (Mat.approx_equal a (Mat.transpose a));
  (* Factorable without exception = positive definite. *)
  ignore (Lapack.cholesky a)

let test_spd_deterministic () =
  Alcotest.(check bool) "same seed same matrix" true
    (Mat.equal (Spd.random_spd ~seed:30 8) (Spd.random_spd ~seed:30 8));
  Alcotest.(check bool) "different seeds differ" false
    (Mat.equal (Spd.random_spd ~seed:30 8) (Spd.random_spd ~seed:31 8))

let test_orthogonal () =
  let q = Spd.random_orthogonal ~seed:32 10 in
  let qtq = ref_mm (Mat.transpose q) q in
  Alcotest.(check bool) "Q^T Q = I" true
    (Mat.approx_equal ~tol:1e-8 (Mat.identity 10) qtq)

let test_spd_cond () =
  let a = Spd.random_spd_cond ~seed:33 ~cond:100. 8 in
  ignore (Lapack.cholesky a);
  Alcotest.(check bool) "symmetric" true
    (Mat.approx_equal ~tol:1e-10 a (Mat.transpose a))

let test_kalman_cov_spd () =
  ignore (Lapack.cholesky (Spd.kalman_covariance ~seed:34 16))

(* ------------------------------------------------------------------ *)
(* Tile                                                                *)
(* ------------------------------------------------------------------ *)

let test_tile_roundtrip () =
  let a = Spd.random ~seed:35 12 12 in
  let t = Tile.of_mat ~block:4 a in
  Alcotest.(check int) "grid" 3 (Tile.grid t);
  check_mat "roundtrip" a (Tile.to_mat t)

let test_tile_aliasing () =
  let t = Tile.create ~block:2 ~n:4 in
  let b = Tile.tile t 1 1 in
  Mat.set b 0 0 42.;
  check_float "alias visible" 42. (Mat.get (Tile.to_mat t) 2 2)

let test_tile_invalid () =
  Alcotest.(check bool) "non-dividing block" true
    (try
       ignore (Tile.create ~block:5 ~n:12);
       false
     with Invalid_argument _ -> true)

let test_tile_set_get () =
  let t = Tile.create ~block:2 ~n:6 in
  Tile.set_tile t 2 0 (Mat.scalar 2 7.);
  check_float "set_tile" 7. (Mat.get (Tile.to_mat t) 4 0);
  check_float "off-diag of tile" 0. (Mat.get (Tile.to_mat t) 4 1)

let test_tile_copy_independent () =
  let t = Tile.create ~block:2 ~n:4 in
  let c = Tile.copy t in
  Mat.set (Tile.tile t 0 0) 0 0 5.;
  check_float "copy unaffected" 0. (Mat.get (Tile.tile c 0 0) 0 0)

(* ------------------------------------------------------------------ *)
(* Matrix Market I/O                                                   *)
(* ------------------------------------------------------------------ *)

let test_mm_roundtrip_general () =
  let a = Spd.random ~seed:70 5 3 in
  let b = Mm_io.read_string (Mm_io.to_string a) in
  check_mat "roundtrip" a b

let test_mm_roundtrip_symmetric () =
  let a = Spd.random_spd ~seed:71 6 in
  let b = Mm_io.read_string (Mm_io.to_string ~symmetric:true a) in
  Alcotest.(check bool) "roundtrip" true (Mat.approx_equal ~tol:0. a b)

let test_mm_coordinate () =
  let text =
    "%%MatrixMarket matrix coordinate real symmetric\n\
     % a comment\n\
     3 3 4\n\
     1 1 2.0\n\
     2 2 3.0\n\
     3 3 4.0\n\
     3 1 0.5\n"
  in
  let m = Mm_io.read_string text in
  check_float "diag" 3. (Mat.get m 1 1);
  check_float "mirrored" 0.5 (Mat.get m 0 2);
  check_float "zero fill" 0. (Mat.get m 1 0)

let test_mm_array_column_major () =
  let text =
    "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"
  in
  let m = Mm_io.read_string text in
  (* column-major: first column is 1,2 *)
  check_float "(0,0)" 1. (Mat.get m 0 0);
  check_float "(1,0)" 2. (Mat.get m 1 0);
  check_float "(0,1)" 3. (Mat.get m 0 1)

let test_mm_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (Mm_io.read_string text);
           false
         with Failure _ -> true))
    [
      "not a header\n1 1\n1\n";
      "%%MatrixMarket matrix array complex general\n1 1\n1\n";
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n";
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n";
    ]

let test_mm_file_io () =
  let a = Spd.random_spd ~seed:72 8 in
  let path = Filename.temp_file "mmtest" ".mtx" in
  Mm_io.write ~symmetric:true a path;
  let b = Mm_io.read path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Mat.approx_equal ~tol:0. a b)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let small_dim = QCheck.Gen.int_range 1 12

let gen_mat m n =
  QCheck.Gen.(
    array_size (return (m * n)) (float_range (-10.) 10.) >|= fun d ->
    Mat.of_col_major ~rows:m ~cols:n d)

let arb_square =
  QCheck.make
    QCheck.Gen.(small_dim >>= fun n -> gen_mat n n >|= fun a -> (n, a))
    ~print:(fun (_, a) -> Mat.to_string a)

let arb_spd =
  QCheck.make
    QCheck.Gen.(
      pair (int_range 1 14) (int_range 0 10000) >|= fun (n, seed) ->
      Spd.random_spd ~seed n)
    ~print:Mat.to_string

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:100 arb_square
    (fun (_, a) -> Mat.equal a (Mat.transpose (Mat.transpose a)))

let prop_gemm_identity =
  QCheck.Test.make ~name:"A*I = A" ~count:100 arb_square (fun (n, a) ->
      Mat.approx_equal ~tol:1e-9 a (Blas3.gemm_alloc a (Mat.identity n)))

let prop_gemm_assoc_with_vector =
  QCheck.Test.make ~name:"(AB)x = A(Bx)" ~count:60
    (QCheck.make
       QCheck.Gen.(
         small_dim >>= fun n ->
         triple (gen_mat n n) (gen_mat n n)
           (array_size (return n) (float_range (-5.) 5.))))
    (fun (a, b, x) ->
      let ab_x = Blas2.gemv_alloc (Blas3.gemm_alloc a b) x in
      let a_bx = Blas2.gemv_alloc a (Blas2.gemv_alloc b x) in
      Vec.approx_equal ~tol:1e-6 ab_x a_bx)

let prop_potrf_reconstructs =
  QCheck.Test.make ~name:"potrf: LL^T ~ A" ~count:60 arb_spd (fun a ->
      let l = Mat.copy a in
      Lapack.potrf ~block:4 Types.Lower l;
      Mat.rel_diff (Blas3.gemm_alloc ~transb:Types.Trans l l) a < 1e-8)

let prop_trsm_inverts =
  QCheck.Test.make ~name:"trsm then multiply back" ~count:60 arb_spd (fun a ->
      let l = Lapack.cholesky a in
      let n = Mat.rows a in
      let b0 = Spd.random ~seed:(n * 31) n 3 in
      let b = Mat.copy b0 in
      Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Non_unit_diag l b;
      Mat.rel_diff (Blas3.gemm_alloc l b) b0 < 1e-8)

let prop_checksum_linearity =
  (* v^T (A + B) = v^T A + v^T B — the algebra ABFT rests on. *)
  QCheck.Test.make ~name:"gemv linearity" ~count:100
    (QCheck.make
       QCheck.Gen.(small_dim >>= fun n -> pair (gen_mat n n) (gen_mat n n)))
    (fun (a, b) ->
      let v = Vec.ones (Mat.rows a) in
      let lhs = Blas2.gemv_alloc ~trans:Types.Trans (Mat.add a b) v in
      let rhs =
        Vec.add
          (Blas2.gemv_alloc ~trans:Types.Trans a v)
          (Blas2.gemv_alloc ~trans:Types.Trans b v)
      in
      Vec.approx_equal ~tol:1e-7 lhs rhs)

let prop_tile_roundtrip =
  QCheck.Test.make ~name:"tile roundtrip" ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 4) (int_range 1 4) >>= fun (b, g) ->
         gen_mat (b * g) (b * g) >|= fun a -> (b, a)))
    (fun (b, a) -> Mat.equal a (Tile.to_mat (Tile.of_mat ~block:b a)))

let prop_norm_triangle =
  QCheck.Test.make ~name:"Frobenius triangle inequality" ~count:100
    (QCheck.make
       QCheck.Gen.(small_dim >>= fun n -> pair (gen_mat n n) (gen_mat n n)))
    (fun (a, b) ->
      Mat.norm_fro (Mat.add a b)
      <= Mat.norm_fro a +. Mat.norm_fro b +. 1e-9)

(* ---- tiled/parallel kernels vs the naive reference ----------------

   Shapes deliberately straddle the blocking parameters (jb = 16,
   kc = 64, mc = 128) and the naive-fallback cutoff, including sizes
   not divisible by any tile edge; alpha/beta hit the special-cased 0
   and 1. A second family checks bitwise pool-size invariance on
   operands big enough to engage the parallel path. *)

let gen_trans = QCheck.Gen.oneofl [ Types.No_trans; Types.Trans ]
let gen_uplo = QCheck.Gen.oneofl [ Types.Lower; Types.Upper ]

let gen_coef = QCheck.Gen.oneofl [ 0.; 1.; -0.5 ]
(* 0 and 1 are special-cased in every kernel *)

let blocky_dim = QCheck.Gen.oneofl [ 1; 7; 16; 17; 48; 63; 64; 65; 97; 130 ]

let prop_gemm_tiled_matches_naive =
  QCheck.Test.make ~name:"tiled gemm = naive gemm" ~count:40
    (QCheck.make
       QCheck.Gen.(
         triple blocky_dim blocky_dim blocky_dim >>= fun (m, n, k) ->
         pair (pair gen_trans gen_trans) (pair gen_coef gen_coef)
         >>= fun ((ta, tb), (alpha, beta)) ->
         let am, an = match ta with Types.No_trans -> (m, k) | _ -> (k, m) in
         let bm, bn = match tb with Types.No_trans -> (k, n) | _ -> (n, k) in
         triple (gen_mat am an) (gen_mat bm bn) (gen_mat m n)
         >|= fun (a, b, c0) -> (ta, tb, alpha, beta, a, b, c0)))
    (fun (ta, tb, alpha, beta, a, b, c0) ->
      let c_naive = Mat.copy c0 and c_tiled = Mat.copy c0 in
      Blas3.gemm_naive ~transa:ta ~transb:tb ~alpha ~beta a b c_naive;
      Blas3.gemm ~transa:ta ~transb:tb ~alpha ~beta a b c_tiled;
      Mat.approx_equal ~tol:1e-8 c_naive c_tiled)

let prop_syrk_tiled_matches_naive =
  QCheck.Test.make ~name:"tiled syrk = naive syrk" ~count:40
    (QCheck.make
       QCheck.Gen.(
         pair blocky_dim blocky_dim >>= fun (n, k) ->
         pair (pair gen_uplo gen_trans) (pair gen_coef gen_coef)
         >>= fun ((uplo, trans), (alpha, beta)) ->
         let am, an = match trans with Types.No_trans -> (n, k) | _ -> (k, n) in
         pair (gen_mat am an) (gen_mat n n)
         >|= fun (a, c0) -> (uplo, trans, alpha, beta, a, c0)))
    (fun (uplo, trans, alpha, beta, a, c0) ->
      let c_naive = Mat.copy c0 and c_tiled = Mat.copy c0 in
      Blas3.syrk_naive ~trans ~alpha ~beta uplo a c_naive;
      Blas3.syrk ~trans ~alpha ~beta uplo a c_tiled;
      (* full-matrix compare also proves the opposite strict triangle
         was left untouched *)
      Mat.approx_equal ~tol:1e-8 c_naive c_tiled)

(* Well-conditioned triangular operand: unit-scale diagonal, small
   off-diagonal, so solves stay at working precision for any sweep
   order. *)
let gen_tri n =
  QCheck.Gen.(
    gen_mat n n >|= fun a ->
    Mat.init n n (fun i j ->
        if i = j then 1.5 +. (0.1 *. Mat.get a i j)
        else Mat.get a i j /. float_of_int n))

let prop_trsm_tiled_matches_naive =
  QCheck.Test.make ~name:"tiled trsm = naive trsm" ~count:40
    (QCheck.make
       QCheck.Gen.(
         oneofl [ 1; 5; 16; 33; 64; 80 ] >>= fun n ->
         oneofl [ 1; 17; 64; 96; 130 ] >>= fun other ->
         pair (pair (oneofl [ Types.Left; Types.Right ]) gen_uplo)
           (pair gen_trans (oneofl [ Types.Unit_diag; Types.Non_unit_diag ]))
         >>= fun ((side, uplo), (trans, diag)) ->
         let bm, bn =
           match side with Types.Left -> (n, other) | Types.Right -> (other, n)
         in
         pair (gen_tri n) (gen_mat bm bn)
         >|= fun (a, b0) -> (side, uplo, trans, diag, a, b0)))
    (fun (side, uplo, trans, diag, a, b0) ->
      let b_naive = Mat.copy b0 and b_tiled = Mat.copy b0 in
      Blas3.trsm_naive side uplo trans diag a b_naive;
      Blas3.trsm side uplo trans diag a b_tiled;
      Mat.approx_equal ~tol:1e-6 b_naive b_tiled)

let pool3 = lazy (Parallel.Pool.create ~domains:3 ())
let pool1 = lazy (Parallel.Pool.create ~domains:1 ())

let prop_pool_size_bitwise_invariance =
  QCheck.Test.make ~name:"kernels bitwise-identical across pool sizes"
    ~count:6
    (QCheck.make
       QCheck.Gen.(
         (* big enough that the parallel path engages for all three
            kernels (work >= 2e6 even with the triangular half) *)
         pair (int_range 160 200) (int_range 0 1000) >>= fun (n, seed) ->
         return (n, seed)))
    (fun (n, seed) ->
      ignore seed;
      let a = Mat.init n n (fun i j -> sin (float_of_int ((i * n) + j)))
      and b = Mat.init n n (fun i j -> cos (float_of_int ((j * n) + i))) in
      let c1 = Mat.create n n and c3 = Mat.create n n in
      Blas3.gemm ~pool:(Lazy.force pool1) ~transb:Types.Trans a b c1;
      Blas3.gemm ~pool:(Lazy.force pool3) ~transb:Types.Trans a b c3;
      let s1 = Mat.create n n and s3 = Mat.create n n in
      Blas3.syrk ~pool:(Lazy.force pool1) Types.Lower a s1;
      Blas3.syrk ~pool:(Lazy.force pool3) Types.Lower a s3;
      let tri =
        Mat.init n n (fun i j ->
            if i = j then 2. else sin (float_of_int (i + (3 * j))) /. 8.)
      in
      let x1 = Mat.copy b and x3 = Mat.copy b in
      Blas3.trsm ~pool:(Lazy.force pool1) Types.Right Types.Lower Types.Trans
        Types.Non_unit_diag tri x1;
      Blas3.trsm ~pool:(Lazy.force pool3) Types.Right Types.Lower Types.Trans
        Types.Non_unit_diag tri x3;
      Mat.equal c1 c3 && Mat.equal s1 s3 && Mat.equal x1 x3)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_transpose_involution;
      prop_gemm_identity;
      prop_gemm_assoc_with_vector;
      prop_potrf_reconstructs;
      prop_trsm_inverts;
      prop_checksum_linearity;
      prop_tile_roundtrip;
      prop_norm_triangle;
      prop_gemm_tiled_matches_naive;
      prop_syrk_tiled_matches_naive;
      prop_trsm_tiled_matches_naive;
      prop_pool_size_bitwise_invariance;
    ]

let () =
  Alcotest.run "matrix"
    [
      ( "vec",
        [
          Alcotest.test_case "constructors" `Quick test_vec_constructors;
          Alcotest.test_case "axpy/dot" `Quick test_vec_axpy_dot;
          Alcotest.test_case "nrm2" `Quick test_vec_nrm2;
          Alcotest.test_case "iamax" `Quick test_vec_iamax;
          Alcotest.test_case "length mismatch" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "storage order" `Quick test_mat_storage_order;
          Alcotest.test_case "of/to arrays" `Quick test_mat_roundtrip;
          Alcotest.test_case "sub/blit" `Quick test_mat_sub_blit;
          Alcotest.test_case "sub bounds" `Quick test_mat_sub_out_of_bounds;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "norms" `Quick test_mat_norms;
          Alcotest.test_case "tril/triu" `Quick test_mat_tri;
          Alcotest.test_case "symmetrize" `Quick test_mat_symmetrize;
          Alcotest.test_case "row/col" `Quick test_mat_row_col;
        ] );
      ( "blas2",
        [
          Alcotest.test_case "gemv N" `Quick test_gemv_notrans;
          Alcotest.test_case "gemv T" `Quick test_gemv_trans;
          Alcotest.test_case "gemv alpha/beta" `Quick test_gemv_alpha_beta;
          Alcotest.test_case "ger" `Quick test_ger;
          Alcotest.test_case "syr" `Quick test_syr;
          Alcotest.test_case "trsv cases" `Quick test_trsv_all_cases;
          Alcotest.test_case "trsv unit diag" `Quick test_trsv_unit_diag;
          Alcotest.test_case "trsv zero pivot" `Quick test_trsv_zero_pivot;
          Alcotest.test_case "trmv" `Quick test_trmv;
        ] );
      ( "blas3",
        [
          Alcotest.test_case "gemm" `Quick test_gemm_basic;
          Alcotest.test_case "gemm transposes" `Quick
            test_gemm_trans_combinations;
          Alcotest.test_case "gemm alpha/beta" `Quick test_gemm_alpha_beta;
          Alcotest.test_case "gemm mismatch" `Quick test_gemm_mismatch;
          Alcotest.test_case "syrk lower" `Quick test_syrk_lower;
          Alcotest.test_case "syrk trans acc" `Quick test_syrk_trans_accumulate;
          Alcotest.test_case "trsm left lower" `Quick test_trsm_left_lower;
          Alcotest.test_case "trsm right lower trans (MAGMA)" `Quick
            test_trsm_right_lower_trans;
          Alcotest.test_case "trsm alpha" `Quick test_trsm_alpha;
          Alcotest.test_case "trmm inverts trsm" `Quick test_trmm_inverts_trsm;
          Alcotest.test_case "symm" `Quick test_symm;
        ] );
      ( "blas3-fused",
        [
          Alcotest.test_case "gemm = separate (bitwise)" `Quick
            test_fused_gemm_matches_separate;
          Alcotest.test_case "gemm pool invariance" `Quick
            test_fused_gemm_pool_invariance;
          Alcotest.test_case "syrk = separate (bitwise)" `Quick
            test_fused_syrk_matches_separate;
          Alcotest.test_case "trsm = separate (bitwise)" `Quick
            test_fused_trsm_matches_separate;
          Alcotest.test_case "validation" `Quick test_fused_validation;
          Alcotest.test_case "chk_reduce_sym mirrors" `Quick
            test_chk_reduce_sym_mirrors;
        ] );
      ( "lapack",
        [
          Alcotest.test_case "potf2 reconstruct" `Quick test_potf2_reconstruct;
          Alcotest.test_case "potf2 upper" `Quick test_potf2_upper;
          Alcotest.test_case "potf2 indefinite" `Quick test_potf2_not_spd;
          Alcotest.test_case "potf2 zeroes opposite" `Quick
            test_potf2_zeroes_upper;
          Alcotest.test_case "potrf = potf2" `Quick test_potrf_matches_potf2;
          Alcotest.test_case "potrf odd block" `Quick test_potrf_odd_block;
          Alcotest.test_case "potrf failure index" `Quick
            test_potrf_reports_global_index;
          Alcotest.test_case "potrs" `Quick test_potrs;
          Alcotest.test_case "solve_spd" `Quick test_solve_spd;
          Alcotest.test_case "log_det" `Quick test_log_det;
          Alcotest.test_case "laplacian" `Quick test_cholesky_laplacian;
        ] );
      ( "spd",
        [
          Alcotest.test_case "random_spd is SPD" `Quick test_spd_is_spd;
          Alcotest.test_case "deterministic" `Quick test_spd_deterministic;
          Alcotest.test_case "orthogonal" `Quick test_orthogonal;
          Alcotest.test_case "conditioned" `Quick test_spd_cond;
          Alcotest.test_case "kalman covariance" `Quick test_kalman_cov_spd;
        ] );
      ( "tile",
        [
          Alcotest.test_case "roundtrip" `Quick test_tile_roundtrip;
          Alcotest.test_case "aliasing" `Quick test_tile_aliasing;
          Alcotest.test_case "invalid block" `Quick test_tile_invalid;
          Alcotest.test_case "set/get" `Quick test_tile_set_get;
          Alcotest.test_case "copy independent" `Quick
            test_tile_copy_independent;
        ] );
      ( "mm_io",
        [
          Alcotest.test_case "roundtrip general" `Quick test_mm_roundtrip_general;
          Alcotest.test_case "roundtrip symmetric" `Quick
            test_mm_roundtrip_symmetric;
          Alcotest.test_case "coordinate" `Quick test_mm_coordinate;
          Alcotest.test_case "array column-major" `Quick
            test_mm_array_column_major;
          Alcotest.test_case "rejects garbage" `Quick test_mm_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_mm_file_io;
        ] );
      ("properties", props);
    ]
