(* Tests for lib/obs: the shared JSON primitives, the span/counter
   sink, exporter well-formedness, and the tracing determinism
   contracts (traced = untraced bitwise; span/counter totals invariant
   in the pool size). *)

open Matrix
module Pool = Parallel.Pool
module C = Cholesky

(* ------------------------------------------------------------------ *)
(* A miniature JSON validator                                          *)
(*                                                                     *)
(* Enough of RFC 8259 to certify that the exporters emit parseable     *)
(* documents: objects, arrays, strings (with escape and \uXXXX         *)
(* handling, rejecting raw control bytes), numbers, literals. Raises   *)
(* [Bad] with a position on the first violation.                       *)
(* ------------------------------------------------------------------ *)

exception Bad of string * int

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
        incr pos;
        c
    | None -> fail "unexpected end of input"
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let g = next () in
    if g <> c then fail (Printf.sprintf "expected %C, got %C" c g)
  in
  let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
  let string_body () =
    (* opening quote already consumed *)
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> (
          match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
              for _ = 1 to 4 do
                if not (is_hex (next ())) then fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape character")
      | c when Char.code c < 0x20 -> fail "raw control byte inside string"
      | _ -> go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let d = ref 0 in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        incr pos;
        incr d
      done;
      if !d = 0 then fail "digit expected"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' ->
        incr pos;
        string_body ()
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else
          let rec members () =
            skip_ws ();
            expect '"';
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match next () with
            | ',' -> members ()
            | '}' -> ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else
          let rec elements () =
            value ();
            skip_ws ();
            match next () with
            | ',' -> elements ()
            | ']' -> ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
    | Some 't' -> List.iter expect [ 't'; 'r'; 'u'; 'e' ]
    | Some 'f' -> List.iter expect [ 'f'; 'a'; 'l'; 's'; 'e' ]
    | Some 'n' -> List.iter expect [ 'n'; 'u'; 'l'; 'l' ]
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value expected"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage after document"

let parses s =
  try
    validate_json s;
    true
  with Bad _ -> false

let check_parses label s =
  try validate_json s
  with Bad (msg, p) ->
    Alcotest.failf "%s: invalid JSON at byte %d: %s" label p msg

(* the validator itself must reject garbage, or the parse-clean tests
   above prove nothing *)
let test_validator_rejects () =
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ String.escaped s) false (parses s))
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "\"unterminated";
      "\"raw\x01control\"";
      "{\"a\":1} trailing";
      "nul";
      "1.";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) ("accepts " ^ String.escaped s) true (parses s))
    [ "{}"; "[]"; "[1, -2.5e3, \"x\\u0041\", true, null]"; "{\"a\": [0.0]}" ]

(* ------------------------------------------------------------------ *)
(* Json primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_escape () =
  Alcotest.(check string) "quote" "a\\\"b" (Obs.Json.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Obs.Json.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Obs.Json.escape "a\nb");
  Alcotest.(check string) "cr tab" "\\r\\t" (Obs.Json.escape "\r\t");
  Alcotest.(check string) "control" "a\\u0001b\\u001fc"
    (Obs.Json.escape "a\x01b\x1fc");
  Alcotest.(check string) "passthrough" "plain élan/:.-_"
    (Obs.Json.escape "plain élan/:.-_");
  (* quoted hostile strings embed into a valid document *)
  check_parses "hostile quoted string parses"
    (Obs.Json.quote "q\"b\\s\x02\nend")

let test_number () =
  Alcotest.(check string) "nan" "\"nan\"" (Obs.Json.number Float.nan);
  Alcotest.(check string) "inf" "\"inf\"" (Obs.Json.number Float.infinity);
  Alcotest.(check string) "-inf" "\"-inf\"" (Obs.Json.number Float.neg_infinity);
  Alcotest.(check string) "integer" "3.0" (Obs.Json.number 3.);
  Alcotest.(check string) "zero" "0.0" (Obs.Json.number 0.);
  (* full precision round-trip for a non-integer *)
  let f = 0.1 +. 0.2 in
  Alcotest.(check bool) "round-trips" true
    (match float_of_string_opt (Obs.Json.number f) with
    | Some g -> Int64.bits_of_float g = Int64.bits_of_float f
    | None -> false);
  List.iter
    (fun f -> check_parses "number parses" ("[" ^ Obs.Json.number f ^ "]"))
    [ 1.5; -0.0; 1e300; Float.nan; Float.infinity; 12345678901234567890. ]

(* ------------------------------------------------------------------ *)
(* Sink mechanics                                                      *)
(* ------------------------------------------------------------------ *)

let test_null_sink_inert () =
  let o = Obs.null in
  Alcotest.(check bool) "disabled" false (Obs.enabled o);
  Obs.incr o "x";
  Obs.observe o "h" 1.;
  let v = Obs.span o ~op:"noop" ~phase:"p" (fun () -> 41 + 1) in
  Alcotest.(check int) "span passes value through" 42 v;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans o));
  Alcotest.(check int) "no counters" 0 (List.length (Obs.counters o));
  Alcotest.(check int) "no metrics" 0 (List.length (Obs.metric_list o))

let test_registry () =
  let o = Obs.create () in
  Obs.incr o "c";
  Obs.incr o ~by:2.5 "c";
  Obs.observe o "h" 3.;
  Obs.observe o "h" 1.;
  Obs.span o ~op:"work" ~phase:"p" (fun () -> ());
  Obs.span o ~tile:(1, 2) ~op:"work" ~phase:"p" (fun () -> ());
  Alcotest.(check (list (pair string string)))
    "counter total" [ ("c", "3.5") ]
    (List.map (fun (k, v) -> (k, Printf.sprintf "%g" v)) (Obs.counters o));
  let m = Obs.metric_list o in
  let get k =
    match List.assoc_opt k m with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing from %d entries" k (List.length m)
  in
  Alcotest.(check int) "hist n" 2 (int_of_float (get "hist.h_n"));
  Alcotest.(check int) "hist sum" 4 (int_of_float (get "hist.h_sum"));
  Alcotest.(check int) "hist min" 1 (int_of_float (get "hist.h_min"));
  Alcotest.(check int) "hist max" 3 (int_of_float (get "hist.h_max"));
  Alcotest.(check int) "op count" 2 (int_of_float (get "op.work_n"));
  match Obs.op_totals o with
  | [ ("work", (total, 2)) ] ->
      Alcotest.(check bool) "op total sane" true
        (total >= 0. && total < 1. && Obs.total_span_s o >= total)
  | l -> Alcotest.failf "unexpected op_totals (%d entries)" (List.length l)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_exporters_parse () =
  let o = Obs.create () in
  (* hostile names: the exporters must escape whatever they are fed *)
  Obs.span o ~op:"bad\"op\\\x02" ~phase:"ph\"ase" (fun () -> ());
  Obs.span o ~tile:(0, 1) ~op:"gemm" ~phase:"compute" (fun () -> ());
  Obs.incr o "weird\"counter";
  Obs.observe o "h" Float.nan;
  check_parses "chrome trace parses" (Obs.chrome_trace o);
  check_parses "metrics json parses"
    (Obs.metrics_json
       [
         {
           Obs.experiment = "exp\"1";
           name = "na\\me";
           size = 7;
           metrics = ("nan_metric", Float.nan) :: Obs.metric_list o;
         };
       ]);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let trace = Obs.chrome_trace o in
  Alcotest.(check bool) "complete events" true (contains trace "\"ph\":\"X\"");
  Alcotest.(check bool) "thread metadata" true (contains trace "thread_name");
  Alcotest.(check bool)
    "schema_version in metrics" true
    (contains (Obs.metrics_json []) "\"schema_version\": 1");
  Alcotest.(check string) "empty sink trace is valid" "[]"
    (Obs.chrome_trace Obs.null);
  Alcotest.(check bool) "summary table mentions ops" true
    (contains (Obs.summary_table o) "gemm")

(* ------------------------------------------------------------------ *)
(* Determinism contracts on the numeric driver                         *)
(* ------------------------------------------------------------------ *)

let bitwise_equal x y =
  Mat.rows x = Mat.rows y
  && Mat.cols x = Mat.cols y
  &&
  let ok = ref true in
  for j = 0 to Mat.cols x - 1 do
    for i = 0 to Mat.rows x - 1 do
      if
        Int64.bits_of_float (Mat.get x i j)
        <> Int64.bits_of_float (Mat.get y i j)
      then ok := false
    done
  done;
  !ok

let cfg () =
  C.Config.make ~machine:Hetsim.Machine.testbench ~block:16
    ~scheme:(Abft.Scheme.enhanced ()) ()

let plan =
  [
    Fault.computing_error ~delta:5e3 ~iteration:1 ~op:Fault.Gemm ~block:(3, 1)
      ~element:(2, 4) ();
  ]

let test_traced_equals_untraced () =
  let a = Spd.random_spd ~seed:42 96 in
  let untraced = C.Ft.factor ~plan (cfg ()) a in
  let obs = Obs.create () in
  let traced = C.Ft.factor ~obs ~plan (cfg ()) a in
  Alcotest.(check bool) "untraced succeeds" true
    (untraced.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "traced succeeds" true
    (traced.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "factors bitwise identical" true
    (bitwise_equal untraced.C.Ft.factor traced.C.Ft.factor);
  Alcotest.(check bool) "spans recorded" true (List.length (Obs.spans obs) > 0)

(* span counts and every non-pool counter must not depend on how many
   domains executed the work: spans are emitted per work item, and the
   only size-sensitive counters are the pool's own (prefixed "pool."). *)
let test_domain_invariance () =
  let a = Spd.random_spd ~seed:42 96 in
  let run domains =
    let p = Pool.create ~domains () in
    let obs = Obs.create () in
    let r = C.Ft.factor ~pool:p ~obs ~plan (cfg ()) a in
    Pool.shutdown p;
    Alcotest.(check bool)
      (Printf.sprintf "%d-domain run succeeds" domains)
      true
      (r.C.Ft.outcome = C.Ft.Success);
    let span_counts =
      List.map (fun (op, (_, cnt)) -> (op, cnt)) (Obs.op_totals obs)
      |> List.sort compare
    in
    let non_pool_counters =
      Obs.counters obs
      |> List.filter (fun (k, _) ->
             not (String.length k >= 5 && String.sub k 0 5 = "pool."))
      |> List.map (fun (k, v) -> (k, Printf.sprintf "%.17g" v))
    in
    (span_counts, non_pool_counters)
  in
  let s1, c1 = run 1 in
  let s2, c2 = run 2 in
  Alcotest.(check (list (pair string int))) "span counts per op identical" s1 s2;
  Alcotest.(check (list (pair string string))) "counter totals identical" c1 c2

(* on one domain the driver's spans never nest, so their summed
   duration is bounded by wall time — and the instrumentation points
   blanket the factorization, so they also account for most of it.
   Bounds are deliberately loose: this is a structural check, the tight
   5%-of-wall criterion runs on a real ftchol trace in CI. *)
let test_wall_coverage () =
  let a = Spd.random_spd ~seed:11 192 in
  let p = Pool.create ~domains:1 () in
  let obs = Obs.create () in
  let t0 = Unix.gettimeofday () in
  let r = C.Ft.factor ~pool:p ~obs (cfg ()) a in
  let wall = Unix.gettimeofday () -. t0 in
  Pool.shutdown p;
  Alcotest.(check bool) "run succeeds" true (r.C.Ft.outcome = C.Ft.Success);
  let total = Obs.total_span_s obs in
  Alcotest.(check bool)
    (Printf.sprintf "span total %.6fs <= wall %.6fs" total wall)
    true
    (total <= (wall *. 1.10) +. 1e-3);
  Alcotest.(check bool)
    (Printf.sprintf "span total %.6fs covers most of wall %.6fs" total wall)
    true
    (total >= wall *. 0.5)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "validator sanity" `Quick test_validator_rejects;
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "number" `Quick test_number;
        ] );
      ( "sink",
        [
          Alcotest.test_case "null sink inert" `Quick test_null_sink_inert;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "exporters parse" `Quick test_exporters_parse;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "traced = untraced" `Quick
            test_traced_equals_untraced;
          Alcotest.test_case "domain invariance" `Quick test_domain_invariance;
          Alcotest.test_case "wall coverage" `Quick test_wall_coverage;
        ] );
    ]
