(* Tests for the domain pool (lib/parallel) and for the end-to-end
   determinism contract: the FT Cholesky drivers must produce
   bitwise-identical factors for every pool size. *)

open Matrix
module Pool = Parallel.Pool
module C = Cholesky

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)
(* ------------------------------------------------------------------ *)

let test_create_size () =
  let p = Pool.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Pool.size p);
  Pool.shutdown p;
  let p1 = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size p1);
  Pool.shutdown p1;
  Alcotest.check_raises "domains 0 rejected"
    (Invalid_argument "Pool.create: domains 0 < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_parallel_for_covers () =
  let p = Pool.create ~domains:4 () in
  let n = 1000 in
  let hits = Array.make n 0 in
  (* each index owned by exactly one task: no atomics needed *)
  Pool.parallel_for p ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun c -> c = 1) hits);
  (* empty and singleton ranges *)
  Pool.parallel_for p ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "empty range ran");
  let got = ref (-1) in
  Pool.parallel_for p ~lo:7 ~hi:8 (fun i -> got := i);
  Alcotest.(check int) "singleton" 7 !got;
  Pool.shutdown p

let test_parallel_for_reuse () =
  (* one pool, many batches — the whole point of pooling domains *)
  let p = Pool.create ~domains:3 () in
  let total = ref 0 in
  let m = Mutex.create () in
  for _ = 1 to 50 do
    Pool.parallel_for p ~lo:0 ~hi:20 (fun i ->
        Mutex.lock m;
        total := !total + i;
        Mutex.unlock m)
  done;
  Alcotest.(check int) "50 batches of 0+..+19" (50 * 190) !total;
  Pool.shutdown p

let test_parallel_chunks_partition () =
  let p = Pool.create ~domains:4 () in
  let n = 103 in
  let hits = Array.make n 0 in
  Pool.parallel_chunks p ~lo:0 ~hi:n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "chunks partition the range" true
    (Array.for_all (fun c -> c = 1) hits);
  (* fewer items than lanes: chunks must not overlap or go empty *)
  let small = Array.make 2 0 in
  Pool.parallel_chunks p ~lo:0 ~hi:2 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        small.(i) <- small.(i) + 1
      done);
  Alcotest.(check bool) "2 items over 4 lanes" true
    (Array.for_all (fun c -> c = 1) small);
  Pool.shutdown p

exception Boom of int

let test_exception_propagates () =
  let p = Pool.create ~domains:3 () in
  let raised =
    try
      Pool.parallel_for p ~lo:0 ~hi:100 (fun i ->
          if i = 41 then raise (Boom i));
      false
    with Boom 41 -> true
  in
  Alcotest.(check bool) "exception surfaced" true raised;
  (* the batch drained fully and the pool still works *)
  let count = ref 0 in
  let m = Mutex.create () in
  Pool.parallel_for p ~lo:0 ~hi:32 (fun _ ->
      Mutex.lock m;
      incr count;
      Mutex.unlock m);
  Alcotest.(check int) "pool usable after exception" 32 !count;
  Pool.shutdown p

let test_shutdown () =
  let p = Pool.create ~domains:3 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      Pool.parallel_for p ~lo:0 ~hi:10 (fun _ -> ()))

let test_nested_runs_inline () =
  let p = Pool.create ~domains:3 () in
  let n = 8 in
  let sums = Array.make n 0 in
  Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:n (fun i ->
      (* nested batch from inside a task: must run inline, not deadlock *)
      Pool.parallel_for p ~lo:0 ~hi:10 (fun j -> sums.(i) <- sums.(i) + j));
  Alcotest.(check bool) "nested sums" true (Array.for_all (( = ) 45) sums);
  Pool.shutdown p

let test_chunk_validation () =
  let p = Pool.create ~domains:2 () in
  Alcotest.check_raises "chunk 0 rejected"
    (Invalid_argument "Pool.parallel_for: chunk 0 < 1") (fun () ->
      Pool.parallel_for ~chunk:0 p ~lo:0 ~hi:10 (fun _ -> ()));
  Pool.shutdown p

let test_default_lanes_env () =
  let old = Sys.getenv_opt Pool.env_var in
  let restore () =
    Unix.putenv Pool.env_var (Option.value old ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv Pool.env_var "3";
      Alcotest.(check int) "ABFT_DOMAINS=3" 3 (Pool.default_lanes ());
      Unix.putenv Pool.env_var "1";
      Alcotest.(check int) "ABFT_DOMAINS=1" 1 (Pool.default_lanes ());
      Unix.putenv Pool.env_var "0";
      Alcotest.(check bool) "0 falls back" true (Pool.default_lanes () >= 1);
      Unix.putenv Pool.env_var "banana";
      Alcotest.(check bool) "garbage falls back" true
        (Pool.default_lanes () >= 1))

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: the acceptance contract                     *)
(* ------------------------------------------------------------------ *)

let bitwise_equal x y =
  Mat.rows x = Mat.rows y
  && Mat.cols x = Mat.cols y
  &&
  let ok = ref true in
  for j = 0 to Mat.cols x - 1 do
    for i = 0 to Mat.rows x - 1 do
      if
        Int64.bits_of_float (Mat.get x i j)
        <> Int64.bits_of_float (Mat.get y i j)
      then ok := false
    done
  done;
  !ok

let test_ft_factor_pool_invariant () =
  (* modest size: the tile kernels stay below their parallel cutoff,
     but the driver-level fan-outs (trailing updates, checksum updates,
     verification batches) all engage — and must be bitwise invariant. *)
  let n = 96 in
  let a = Spd.random_spd ~seed:42 n in
  let cfg =
    C.Config.make ~machine:Hetsim.Machine.testbench ~block:16
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  let p1 = Pool.create ~domains:1 () in
  let p4 = Pool.create ~domains:4 () in
  let r1 = C.Ft.factor ~pool:p1 cfg a in
  let r4 = C.Ft.factor ~pool:p4 cfg a in
  Alcotest.(check bool) "1-domain run succeeds" true
    (r1.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "4-domain run succeeds" true
    (r4.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "factors bitwise identical" true
    (bitwise_equal r1.C.Ft.factor r4.C.Ft.factor);
  (* and with faults: corrections must also be pool-size invariant *)
  let plan =
    [
      Fault.computing_error ~delta:5e3 ~iteration:1 ~op:Fault.Gemm
        ~block:(3, 1) ~element:(2, 4) ();
    ]
  in
  let f1 = C.Ft.factor ~pool:p1 ~plan cfg a in
  let f4 = C.Ft.factor ~pool:p4 ~plan cfg a in
  Alcotest.(check bool) "faulty factors bitwise identical" true
    (bitwise_equal f1.C.Ft.factor f4.C.Ft.factor);
  Alcotest.(check int) "same corrections" f1.C.Ft.stats.C.Ft.corrections
    f4.C.Ft.stats.C.Ft.corrections;
  Pool.shutdown p1;
  Pool.shutdown p4

let test_verify_batch_matches_sequential () =
  let n = 64 in
  let a = Spd.random_spd ~seed:7 n in
  let tiles = Tile.of_mat ~block:16 a in
  let store = Abft.Checksum.encode_lower tiles in
  let g = Tile.grid tiles in
  let jobs = ref [] in
  for i = g - 1 downto 0 do
    for c = i downto 0 do
      jobs := (Abft.Checksum.get store i c, Mat.copy (Tile.tile tiles i c)) :: !jobs
    done
  done;
  let jobs = Array.of_list !jobs in
  (* flip one element in two different tiles *)
  let _, t0 = jobs.(0) in
  Mat.set t0 3 5 (Mat.get t0 3 5 +. 100.);
  let _, t2 = jobs.(2) in
  Mat.set t2 1 1 (Mat.get t2 1 1 -. 50.);
  let seq_jobs = Array.map (fun (c, t) -> (c, Mat.copy t)) jobs in
  let p = Pool.create ~domains:4 () in
  let batch = Abft.Verify.verify_batch ~pool:p jobs in
  let seq = Array.map (fun (c, t) -> Abft.Verify.verify c t) seq_jobs in
  Alcotest.(check int) "same length" (Array.length seq) (Array.length batch);
  Array.iteri
    (fun k o ->
      let same =
        match (o, batch.(k)) with
        | Abft.Verify.Clean, Abft.Verify.Clean -> true
        | Abft.Verify.Corrected a, Abft.Verify.Corrected b ->
            List.length a = List.length b
        | Abft.Verify.Uncorrectable _, Abft.Verify.Uncorrectable _ -> true
        | _ -> false
      in
      Alcotest.(check bool) (Printf.sprintf "outcome %d matches" k) true same;
      Alcotest.(check bool)
        (Printf.sprintf "tile %d patched identically" k)
        true
        (bitwise_equal (snd seq_jobs.(k)) (snd jobs.(k))))
    seq;
  Pool.shutdown p

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create/size" `Quick test_create_size;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_parallel_for_covers;
          Alcotest.test_case "reuse across batches" `Quick
            test_parallel_for_reuse;
          Alcotest.test_case "parallel_chunks partition" `Quick
            test_parallel_chunks_partition;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "nested batches inline" `Quick
            test_nested_runs_inline;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
          Alcotest.test_case "ABFT_DOMAINS parsing" `Quick
            test_default_lanes_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ft factor pool-size invariant" `Quick
            test_ft_factor_pool_invariant;
          Alcotest.test_case "verify_batch = sequential verify" `Quick
            test_verify_batch_matches_sequential;
        ] );
    ]
