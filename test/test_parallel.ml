(* Tests for the domain pool (lib/parallel) and for the end-to-end
   determinism contract: the FT Cholesky drivers must produce
   bitwise-identical factors for every pool size. *)

open Matrix
module Pool = Parallel.Pool
module C = Cholesky

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)
(* ------------------------------------------------------------------ *)

let test_create_size () =
  let p = Pool.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Pool.size p);
  Pool.shutdown p;
  let p1 = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size p1);
  Pool.shutdown p1;
  Alcotest.check_raises "domains 0 rejected"
    (Invalid_argument "Pool.create: domains 0 < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_parallel_for_covers () =
  let p = Pool.create ~domains:4 () in
  let n = 1000 in
  let hits = Array.make n 0 in
  (* each index owned by exactly one task: no atomics needed *)
  Pool.parallel_for p ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun c -> c = 1) hits);
  (* empty and singleton ranges *)
  Pool.parallel_for p ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "empty range ran");
  let got = ref (-1) in
  Pool.parallel_for p ~lo:7 ~hi:8 (fun i -> got := i);
  Alcotest.(check int) "singleton" 7 !got;
  Pool.shutdown p

let test_parallel_for_reuse () =
  (* one pool, many batches — the whole point of pooling domains *)
  let p = Pool.create ~domains:3 () in
  let total = ref 0 in
  let m = Mutex.create () in
  for _ = 1 to 50 do
    Pool.parallel_for p ~lo:0 ~hi:20 (fun i ->
        Mutex.lock m;
        total := !total + i;
        Mutex.unlock m)
  done;
  Alcotest.(check int) "50 batches of 0+..+19" (50 * 190) !total;
  Pool.shutdown p

let test_parallel_chunks_partition () =
  let p = Pool.create ~domains:4 () in
  let n = 103 in
  let hits = Array.make n 0 in
  Pool.parallel_chunks p ~lo:0 ~hi:n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "chunks partition the range" true
    (Array.for_all (fun c -> c = 1) hits);
  (* fewer items than lanes: chunks must not overlap or go empty *)
  let small = Array.make 2 0 in
  Pool.parallel_chunks p ~lo:0 ~hi:2 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        small.(i) <- small.(i) + 1
      done);
  Alcotest.(check bool) "2 items over 4 lanes" true
    (Array.for_all (fun c -> c = 1) small);
  Pool.shutdown p

exception Boom of int

let test_exception_propagates () =
  let p = Pool.create ~domains:3 () in
  let raised =
    try
      Pool.parallel_for p ~lo:0 ~hi:100 (fun i ->
          if i = 41 then raise (Boom i));
      false
    with Boom 41 -> true
  in
  Alcotest.(check bool) "exception surfaced" true raised;
  (* the batch drained fully and the pool still works *)
  let count = ref 0 in
  let m = Mutex.create () in
  Pool.parallel_for p ~lo:0 ~hi:32 (fun _ ->
      Mutex.lock m;
      incr count;
      Mutex.unlock m);
  Alcotest.(check int) "pool usable after exception" 32 !count;
  Pool.shutdown p

let test_shutdown () =
  let p = Pool.create ~domains:3 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      Pool.parallel_for p ~lo:0 ~hi:10 (fun _ -> ()))

let test_nested_runs_inline () =
  let p = Pool.create ~domains:3 () in
  let n = 8 in
  let sums = Array.make n 0 in
  Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:n (fun i ->
      (* nested batch from inside a task: must run inline, not deadlock *)
      Pool.parallel_for p ~lo:0 ~hi:10 (fun j -> sums.(i) <- sums.(i) + j));
  Alcotest.(check bool) "nested sums" true (Array.for_all (( = ) 45) sums);
  Pool.shutdown p

let test_chunk_validation () =
  let p = Pool.create ~domains:2 () in
  Alcotest.check_raises "chunk 0 rejected"
    (Invalid_argument "Pool.parallel_for: chunk 0 < 1") (fun () ->
      Pool.parallel_for ~chunk:0 p ~lo:0 ~hi:10 (fun _ -> ()));
  Pool.shutdown p

let test_default_lanes_env () =
  let old = Sys.getenv_opt Pool.env_var in
  let restore () =
    Unix.putenv Pool.env_var (Option.value old ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv Pool.env_var "3";
      Alcotest.(check int) "ABFT_DOMAINS=3" 3 (Pool.default_lanes ());
      Unix.putenv Pool.env_var "1";
      Alcotest.(check int) "ABFT_DOMAINS=1" 1 (Pool.default_lanes ());
      Unix.putenv Pool.env_var "0";
      Alcotest.(check bool) "0 falls back" true (Pool.default_lanes () >= 1);
      Unix.putenv Pool.env_var "banana";
      Alcotest.(check bool) "garbage falls back" true
        (Pool.default_lanes () >= 1))

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: the acceptance contract                     *)
(* ------------------------------------------------------------------ *)

let bitwise_equal x y =
  Mat.rows x = Mat.rows y
  && Mat.cols x = Mat.cols y
  &&
  let ok = ref true in
  for j = 0 to Mat.cols x - 1 do
    for i = 0 to Mat.rows x - 1 do
      if
        Int64.bits_of_float (Mat.get x i j)
        <> Int64.bits_of_float (Mat.get y i j)
      then ok := false
    done
  done;
  !ok

let test_ft_factor_pool_invariant () =
  (* modest size: the tile kernels stay below their parallel cutoff,
     but the driver-level fan-outs (trailing updates, checksum updates,
     verification batches) all engage — and must be bitwise invariant. *)
  let n = 96 in
  let a = Spd.random_spd ~seed:42 n in
  let cfg =
    C.Config.make ~machine:Hetsim.Machine.testbench ~block:16
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  let p1 = Pool.create ~domains:1 () in
  let p4 = Pool.create ~domains:4 () in
  let r1 = C.Ft.factor ~pool:p1 cfg a in
  let r4 = C.Ft.factor ~pool:p4 cfg a in
  Alcotest.(check bool) "1-domain run succeeds" true
    (r1.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "4-domain run succeeds" true
    (r4.C.Ft.outcome = C.Ft.Success);
  Alcotest.(check bool) "factors bitwise identical" true
    (bitwise_equal r1.C.Ft.factor r4.C.Ft.factor);
  (* and with faults: corrections must also be pool-size invariant *)
  let plan =
    [
      Fault.computing_error ~delta:5e3 ~iteration:1 ~op:Fault.Gemm
        ~block:(3, 1) ~element:(2, 4) ();
    ]
  in
  let f1 = C.Ft.factor ~pool:p1 ~plan cfg a in
  let f4 = C.Ft.factor ~pool:p4 ~plan cfg a in
  Alcotest.(check bool) "faulty factors bitwise identical" true
    (bitwise_equal f1.C.Ft.factor f4.C.Ft.factor);
  Alcotest.(check int) "same corrections" f1.C.Ft.stats.C.Ft.corrections
    f4.C.Ft.stats.C.Ft.corrections;
  Pool.shutdown p1;
  Pool.shutdown p4

let test_verify_batch_matches_sequential () =
  let n = 64 in
  let a = Spd.random_spd ~seed:7 n in
  let tiles = Tile.of_mat ~block:16 a in
  let store = Abft.Checksum.encode_lower tiles in
  let g = Tile.grid tiles in
  let jobs = ref [] in
  for i = g - 1 downto 0 do
    for c = i downto 0 do
      jobs := (Abft.Checksum.get store i c, Mat.copy (Tile.tile tiles i c)) :: !jobs
    done
  done;
  let jobs = Array.of_list !jobs in
  (* flip one element in two different tiles *)
  let _, t0 = jobs.(0) in
  Mat.set t0 3 5 (Mat.get t0 3 5 +. 100.);
  let _, t2 = jobs.(2) in
  Mat.set t2 1 1 (Mat.get t2 1 1 -. 50.);
  let seq_jobs = Array.map (fun (c, t) -> (c, Mat.copy t)) jobs in
  let p = Pool.create ~domains:4 () in
  let batch = Abft.Verify.verify_batch ~pool:p jobs in
  let seq = Array.map (fun (c, t) -> Abft.Verify.verify c t) seq_jobs in
  Alcotest.(check int) "same length" (Array.length seq) (Array.length batch);
  Array.iteri
    (fun k o ->
      let same =
        match (o, batch.(k)) with
        | Abft.Verify.Clean, Abft.Verify.Clean -> true
        | Abft.Verify.Corrected a, Abft.Verify.Corrected b ->
            List.length a = List.length b
        | Abft.Verify.Uncorrectable _, Abft.Verify.Uncorrectable _ -> true
        | _ -> false
      in
      Alcotest.(check bool) (Printf.sprintf "outcome %d matches" k) true same;
      Alcotest.(check bool)
        (Printf.sprintf "tile %d patched identically" k)
        true
        (bitwise_equal (snd seq_jobs.(k)) (snd jobs.(k))))
    seq;
  Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Dynamic tile-race detection (ABFT_RACECHECK)                        *)
(* ------------------------------------------------------------------ *)

(* A two-party rendezvous keeps both work items in flight while their
   claims are compared — no sleeps, no timing assumptions. A party
   that Races calls [abort] so the waiter wakes instead of deadlocking. *)
type rendezvous = {
  rm : Mutex.t;
  rc : Condition.t;
  mutable arrived : int;
  mutable aborted : bool;
}

let rendezvous () =
  { rm = Mutex.create (); rc = Condition.create (); arrived = 0; aborted = false }

let meet r ~parties =
  Mutex.lock r.rm;
  r.arrived <- r.arrived + 1;
  Condition.broadcast r.rc;
  while r.arrived < parties && not r.aborted do
    Condition.wait r.rc r.rm
  done;
  Mutex.unlock r.rm

let abort r =
  Mutex.lock r.rm;
  r.aborted <- true;
  Condition.broadcast r.rc;
  Mutex.unlock r.rm

let test_race_overlap_detected () =
  (* two in-flight items claim overlapping rectangles on one tag: the
     second declaration must raise Pool.Race, and run_tasks must
     re-raise it after the batch drains *)
  let p = Pool.create ~domains:4 ~racecheck:true () in
  Alcotest.(check bool) "racecheck on" true (Pool.racecheck_enabled p);
  let r = rendezvous () in
  let raced =
    try
      Pool.run_tasks p ~ntasks:2 (fun _i ->
          try
            Pool.declare_write p ~tag:"tile" ~rows:(0, 31) ~cols:(0, 15);
            meet r ~parties:2
          with e ->
            abort r;
            raise e);
      false
    with Pool.Race _ -> true
  in
  Alcotest.(check bool) "overlap raised Race" true raced;
  Pool.shutdown p

let test_race_disjoint_ok () =
  (* row-block-disjoint claims — the FT driver's idiom — never race *)
  let p = Pool.create ~domains:4 ~racecheck:true () in
  let n = 64 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:n (fun i ->
      Pool.declare_write p ~tag:"tile" ~rows:(i * 16, (i * 16) + 15)
        ~cols:(0, 15);
      hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "all ran" true (Array.for_all (( = ) 1) hits);
  Pool.shutdown p

let test_race_different_tags_ok () =
  (* identical rectangles on different tags (tile vs chk) are distinct
     arrays and must not clash, even while both items are in flight *)
  let p = Pool.create ~domains:4 ~racecheck:true () in
  let r = rendezvous () in
  Pool.run_tasks p ~ntasks:2 (fun i ->
      try
        Pool.declare_write p
          ~tag:(if i = 0 then "tile" else "chk")
          ~rows:(0, 31) ~cols:(0, 31);
        meet r ~parties:2
      with e ->
        abort r;
        raise e);
  Alcotest.(check bool) "no race across tags" true (not r.aborted);
  Pool.shutdown p

let test_race_claims_released () =
  (* claims die with their work item: back-to-back batches writing the
     same rectangle are sequential, not a race *)
  let p = Pool.create ~domains:4 ~racecheck:true () in
  for _round = 1 to 3 do
    Pool.run_tasks p ~ntasks:2 (fun i ->
        Pool.declare_write p ~tag:"tile"
          ~rows:(i * 8, (i * 8) + 7)
          ~cols:(0, 7))
  done;
  Pool.shutdown p

let test_racecheck_off_noop () =
  (* without racecheck every declaration is a no-op: overlapping claims
     pass, and a declaration outside any task is harmless either way.
     racecheck:false is explicit so the suite also passes when the CI
     leg exports ABFT_RACECHECK=1. *)
  let p = Pool.create ~domains:2 ~racecheck:false () in
  Alcotest.(check bool) "explicitly off" false (Pool.racecheck_enabled p);
  Pool.run_tasks p ~ntasks:4 (fun _i ->
      Pool.declare_write p ~tag:"tile" ~rows:(0, 7) ~cols:(0, 7));
  Pool.shutdown p;
  let pr = Pool.create ~domains:1 ~racecheck:true () in
  (* sequential section of a racecheck pool: nothing to race against *)
  Pool.declare_write pr ~tag:"tile" ~rows:(0, 7) ~cols:(0, 7);
  Pool.declare_write pr ~tag:"tile" ~rows:(0, 7) ~cols:(0, 7);
  Pool.shutdown pr

let test_racecheck_env () =
  let old = Sys.getenv_opt Pool.racecheck_env_var in
  let restore () =
    Unix.putenv Pool.racecheck_env_var (Option.value old ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv Pool.racecheck_env_var "1";
      let p = Pool.create ~domains:1 () in
      Alcotest.(check bool) "ABFT_RACECHECK=1" true (Pool.racecheck_enabled p);
      Pool.shutdown p;
      Unix.putenv Pool.racecheck_env_var "no";
      let p' = Pool.create ~domains:1 () in
      Alcotest.(check bool) "unrecognized value off" false
        (Pool.racecheck_enabled p');
      Pool.shutdown p';
      (* an explicit argument beats the environment *)
      Unix.putenv Pool.racecheck_env_var "1";
      let p'' = Pool.create ~domains:1 ~racecheck:false () in
      Alcotest.(check bool) "explicit wins" false (Pool.racecheck_enabled p'');
      Pool.shutdown p'')

let test_ft_factor_racecheck_clean () =
  (* the instrumented FT driver's fan-outs claim disjoint blocks: a
     full factorization under racecheck must succeed unchanged *)
  let n = 96 in
  let a = Spd.random_spd ~seed:7 n in
  let cfg =
    C.Config.make ~machine:Hetsim.Machine.testbench ~block:16
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  let p = Pool.create ~domains:4 ~racecheck:true () in
  let r = C.Ft.factor ~pool:p cfg a in
  Alcotest.(check bool) "racecheck run succeeds" true
    (r.C.Ft.outcome = C.Ft.Success);
  (* and it changes nothing numerically *)
  let p0 = Pool.create ~domains:4 () in
  let r0 = C.Ft.factor ~pool:p0 cfg a in
  Alcotest.(check bool) "bitwise identical to unchecked run" true
    (bitwise_equal r.C.Ft.factor r0.C.Ft.factor);
  Pool.shutdown p;
  Pool.shutdown p0

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create/size" `Quick test_create_size;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_parallel_for_covers;
          Alcotest.test_case "reuse across batches" `Quick
            test_parallel_for_reuse;
          Alcotest.test_case "parallel_chunks partition" `Quick
            test_parallel_chunks_partition;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "nested batches inline" `Quick
            test_nested_runs_inline;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
          Alcotest.test_case "ABFT_DOMAINS parsing" `Quick
            test_default_lanes_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ft factor pool-size invariant" `Quick
            test_ft_factor_pool_invariant;
          Alcotest.test_case "verify_batch = sequential verify" `Quick
            test_verify_batch_matches_sequential;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "overlap detected" `Quick
            test_race_overlap_detected;
          Alcotest.test_case "disjoint claims pass" `Quick test_race_disjoint_ok;
          Alcotest.test_case "tags are distinct arrays" `Quick
            test_race_different_tags_ok;
          Alcotest.test_case "claims released per item" `Quick
            test_race_claims_released;
          Alcotest.test_case "off is a no-op" `Quick test_racecheck_off_noop;
          Alcotest.test_case "ABFT_RACECHECK parsing" `Quick test_racecheck_env;
          Alcotest.test_case "ft factor clean under racecheck" `Quick
            test_ft_factor_racecheck_clean;
        ] );
    ]
