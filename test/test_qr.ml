(* Tests for the FT-QR extension: rectangular panel checksums and the
   blocked MGS driver. *)

open Matrix

let tall seed = Spd.random ~seed 96 48
(* 96x48, full column rank with probability ~1 *)

let expect name want (r : Ftqr.Ft_qr.report) =
  Alcotest.(check string) name want
    (Format.asprintf "%a" Ftqr.Ft_qr.pp_outcome r.Ftqr.Ft_qr.outcome
    |> String.split_on_char ':' |> List.hd)

(* ------------------------------------------------------------------ *)
(* Panelchk                                                            *)
(* ------------------------------------------------------------------ *)

let test_panelchk_clean () =
  let p = Spd.random ~seed:1 20 6 in
  let c = Ftqr.Panelchk.encode p in
  Alcotest.(check bool) "clean" true (Ftqr.Panelchk.check c p)

let test_panelchk_locates_in_tall_panel () =
  let p = Spd.random ~seed:2 20 6 in
  let pristine = Mat.copy p in
  let c = Ftqr.Panelchk.encode p in
  Mat.set p 17 4 (Mat.get p 17 4 +. 250.);
  (match Ftqr.Panelchk.verify c p with
  | Abft.Verify.Corrected [ f ] ->
      Alcotest.(check int) "row" 17 f.Abft.Verify.row;
      Alcotest.(check int) "col" 4 f.Abft.Verify.col
  | o -> Alcotest.failf "expected corrected, got %a" Abft.Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine p)

let test_panelchk_nan_anchor () =
  let p = Spd.random ~seed:3 16 4 in
  let pristine = Mat.copy p in
  let c = Ftqr.Panelchk.encode p in
  Mat.set p 9 2 Float.nan;
  (match Ftqr.Panelchk.verify c p with
  | Abft.Verify.Corrected _ -> ()
  | o -> Alcotest.failf "expected corrected, got %a" Abft.Verify.pp_outcome o);
  Alcotest.(check bool) "restored" true (Mat.approx_equal ~tol:1e-6 pristine p)

let test_panelchk_two_errors_uncorrectable () =
  let p = Spd.random ~seed:4 16 4 in
  let c = Ftqr.Panelchk.encode p in
  Mat.set p 3 1 (Mat.get p 3 1 +. 10.);
  Mat.set p 11 1 (Mat.get p 11 1 -. 20.);
  match Ftqr.Panelchk.verify c p with
  | Abft.Verify.Uncorrectable _ -> ()
  | o -> Alcotest.failf "expected uncorrectable, got %a" Abft.Verify.pp_outcome o

(* ------------------------------------------------------------------ *)
(* FT-QR driver                                                        *)
(* ------------------------------------------------------------------ *)

let test_qr_clean_all_schemes () =
  let a = tall 5 in
  List.iter
    (fun scheme ->
      let r = Ftqr.Ft_qr.factor ~scheme ~block:8 a in
      expect (Abft.Scheme.name scheme) "success" r;
      Alcotest.(check bool) "residual" true (r.Ftqr.Ft_qr.residual < 1e-12);
      Alcotest.(check bool) "orthogonal" true
        (r.Ftqr.Ft_qr.orthogonality < 1e-10);
      (* R upper triangular *)
      let rmat = r.Ftqr.Ft_qr.r in
      let ok = ref true in
      for i = 0 to Mat.rows rmat - 1 do
        for j = 0 to i - 1 do
          if Mat.get rmat i j <> 0. then ok := false
        done
      done;
      Alcotest.(check bool) "R upper" true !ok)
    Abft.Scheme.all

let test_qr_storage_error_in_q_panel () =
  (* Q panel 1 flips at iteration 3, re-read by later projections. *)
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:3 ~block:(1, 0) ~element:(7, 3) () ]
  in
  let r = Ftqr.Ft_qr.factor ~plan ~block:8 (tall 6) in
  expect "corrected before read" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.restarts;
  Alcotest.(check bool) "corrected" true
    (r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.corrections > 0)

let bitwise_equal a b =
  let m = Mat.rows a and n = Mat.cols a in
  Mat.rows b = m && Mat.cols b = n
  &&
  try
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        if
          Int64.bits_of_float (Mat.get a i j)
          <> Int64.bits_of_float (Mat.get b i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

let test_qr_fused_bitwise () =
  (* Fused mode carries both replicas' chains through the
     block-projection GEMM; the carried sums replay the separate
     passes' additions in order, so Q and R must match to the bit. *)
  let a = tall 14 in
  let sep = Ftqr.Ft_qr.factor ~fused:false ~block:8 a in
  let fus = Ftqr.Ft_qr.factor ~fused:true ~block:8 a in
  Alcotest.(check bool) "Q bitwise" true
    (bitwise_equal sep.Ftqr.Ft_qr.q fus.Ftqr.Ft_qr.q);
  Alcotest.(check bool) "R bitwise" true
    (bitwise_equal sep.Ftqr.Ft_qr.r fus.Ftqr.Ft_qr.r)

let test_qr_fused_detection_parity () =
  (* The projection computing error must be caught whether or not the
     chains are fused into the projection kernel. *)
  let plan =
    [
      Fault.computing_error ~delta:50. ~iteration:4 ~op:Fault.Gemm ~block:(4, 2)
        ~element:(11, 2) ();
    ]
  in
  List.iter
    (fun fused ->
      let tag = if fused then "fused" else "separate" in
      let r = Ftqr.Ft_qr.factor ~plan ~fused ~block:8 (tall 7) in
      expect tag "success" r;
      Alcotest.(check int) (tag ^ " no restart") 0
        r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.restarts)
    [ false; true ]

let test_qr_computing_error_between_projections () =
  (* The case that forced per-projection verification: a wrong value
     written by projection k must be caught before projection k+1. *)
  let plan =
    [
      Fault.computing_error ~delta:50. ~iteration:4 ~op:Fault.Gemm ~block:(4, 2)
        ~element:(11, 2) ();
    ]
  in
  let r = Ftqr.Ft_qr.factor ~plan ~block:8 (tall 7) in
  expect "corrected" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.restarts;
  Alcotest.(check bool) "orthogonality preserved" true
    (r.Ftqr.Ft_qr.orthogonality < 1e-10)

let test_qr_no_ft_silent () =
  let plan =
    [
      Fault.computing_error ~delta:0.5 ~iteration:4 ~op:Fault.Gemm ~block:(4, 2)
        ~element:(11, 2) ();
    ]
  in
  let r = Ftqr.Ft_qr.factor ~plan ~scheme:Abft.Scheme.No_ft ~block:8 (tall 8) in
  expect "silent" "silent corruption" r

let test_qr_offline_detects () =
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:3 ~block:(1, 0) ~element:(5, 5) () ]
  in
  let r =
    Ftqr.Ft_qr.factor ~plan ~scheme:Abft.Scheme.Offline ~block:8 (tall 9)
  in
  expect "recovered by redo" "success" r;
  Alcotest.(check int) "one restart" 1 r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.restarts

let test_qr_mgs_window_corrected () =
  (* Unlike Cholesky's POTF2 (whose Algorithm-2 checksum update runs
     after the factorization and consumes whatever the kernel wrote),
     the MGS step transforms panel data and checksum together, so an
     error in its output is an ordinary post-update single error:
     located and corrected at the panel's next read, no recomputation. *)
  let plan =
    [
      Fault.computing_error ~delta:10. ~iteration:2 ~op:Fault.Potf2 ~block:(2, 2)
        ~element:(3, 3) ();
    ]
  in
  let r = Ftqr.Ft_qr.factor ~plan ~block:8 (tall 10) in
  expect "corrected inline" "success" r;
  Alcotest.(check int) "no restart" 0 r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.restarts;
  Alcotest.(check bool) "corrected" true
    (r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.corrections > 0)

let test_qr_rank_deficient_fail_stop () =
  let a = Spd.random ~seed:11 40 16 in
  (* make two columns identical: rank deficient *)
  Mat.set_col a 5 (Mat.col a 4);
  let r = Ftqr.Ft_qr.factor ~scheme:Abft.Scheme.No_ft ~block:8 a in
  (match r.Ftqr.Ft_qr.outcome with
  | Ftqr.Ft_qr.Gave_up _ -> ()
  | o -> Alcotest.failf "expected gave up, got %a" Ftqr.Ft_qr.pp_outcome o);
  Alcotest.(check bool) "fail-stop recorded" true
    (r.Ftqr.Ft_qr.stats.Ftqr.Ft_qr.fail_stops > 0)

let test_qr_validation () =
  Alcotest.(check bool) "wide rejected" true
    (try
       ignore (Ftqr.Ft_qr.factor (Spd.random ~seed:1 10 20));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "block must divide" true
    (try
       ignore (Ftqr.Ft_qr.factor ~block:7 (tall 12));
       false
     with Invalid_argument _ -> true)

let test_qr_matches_reference_mgs () =
  (* Compare against a plain unblocked MGS on the same data: identical
     arithmetic order per column within a panel, but block projections
     group operations; results agree to rounding. *)
  let a = Spd.random ~seed:13 32 16 in
  let r = Ftqr.Ft_qr.factor ~scheme:Abft.Scheme.No_ft ~block:16 a in
  (* one panel = exactly classic MGS *)
  let q = Mat.copy a in
  let rr = Mat.create 16 16 in
  for c = 0 to 15 do
    let v = Mat.col q c in
    let nrm = Vec.nrm2 v in
    Mat.set rr c c nrm;
    Vec.scal (1. /. nrm) v;
    Mat.set_col q c v;
    for c' = c + 1 to 15 do
      let w = Mat.col q c' in
      let proj = Vec.dot v w in
      Mat.set rr c c' proj;
      Vec.axpy (-.proj) v w;
      Mat.set_col q c' w
    done
  done;
  Alcotest.(check bool) "Q agrees" true
    (Mat.approx_equal ~tol:1e-12 q r.Ftqr.Ft_qr.q);
  Alcotest.(check bool) "R agrees" true
    (Mat.approx_equal ~tol:1e-12 rr r.Ftqr.Ft_qr.r)

(* ------------------------------------------------------------------ *)
(* Timing mode                                                          *)
(* ------------------------------------------------------------------ *)

let qr_sched ?plan scheme n =
  let cfg = Cholesky.Config.make ~machine:Hetsim.Machine.tardis ~scheme () in
  Ftqr.Schedule_qr.run ?plan cfg ~m:(2 * n) ~n

let test_qr_sched_ordering () =
  let t scheme = (qr_sched scheme 5120).Ftqr.Schedule_qr.makespan in
  let none = t Abft.Scheme.No_ft in
  let enhanced = t (Abft.Scheme.enhanced ()) in
  Alcotest.(check bool) "enhanced > none" true (enhanced > none);
  Alcotest.(check bool) "within 10%" true (enhanced < none *. 1.10)

let test_qr_sched_mgs_window_no_rerun () =
  (* The QR-specific classification: a Potf2 (MGS) computing error is
     correctable under Online/Enhanced — no recovery pass. *)
  let plan =
    [ Fault.computing_error ~iteration:2 ~op:Fault.Potf2 ~block:(2, 2)
        ~element:(0, 0) () ]
  in
  let r = qr_sched ~plan (Abft.Scheme.enhanced ()) 5120 in
  Alcotest.(check int) "no rerun" 0 r.Ftqr.Schedule_qr.reruns;
  (* ... but still forces one under Offline. *)
  let r = qr_sched ~plan Abft.Scheme.Offline 5120 in
  Alcotest.(check int) "offline reruns" 1 r.Ftqr.Schedule_qr.reruns

let test_qr_sched_storage_rerun_online () =
  let plan =
    [ Fault.storage_error ~iteration:3 ~block:(1, 0) ~element:(0, 0) () ]
  in
  let online = qr_sched ~plan Abft.Scheme.Online 5120 in
  Alcotest.(check int) "online reruns" 1 online.Ftqr.Schedule_qr.reruns;
  let enhanced = qr_sched ~plan (Abft.Scheme.enhanced ()) 5120 in
  Alcotest.(check int) "enhanced absorbs" 0 enhanced.Ftqr.Schedule_qr.reruns

let test_qr_sched_validation () =
  Alcotest.(check bool) "wide" true
    (try
       ignore
         (Ftqr.Schedule_qr.run
            (Cholesky.Config.make ~machine:Hetsim.Machine.tardis ())
            ~m:100 ~n:5120);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_qr_reconstructs =
  QCheck.Test.make ~name:"ft-qr: QR ~ A, Q orthonormal" ~count:25
    QCheck.(pair (int_range 2 5) (int_range 0 1000))
    (fun (nb, seed) ->
      let block = 6 in
      let n = nb * block in
      let a = Spd.random ~seed (n * 2) n in
      let r = Ftqr.Ft_qr.factor ~block a in
      r.Ftqr.Ft_qr.outcome = Ftqr.Ft_qr.Success
      && r.Ftqr.Ft_qr.residual < 1e-10
      && r.Ftqr.Ft_qr.orthogonality < 1e-8)

let prop_qr_storage_flip_absorbed =
  QCheck.Test.make ~name:"ft-qr: random storage flip in a live panel absorbed"
    ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nb = 5 and block = 6 in
      let n = nb * block in
      let target = Random.State.int st (nb - 1) in
      (* fire while the panel is still re-read: iterations target+1..nb-1 *)
      let it = target + 1 + Random.State.int st (nb - 1 - target) in
      let plan =
        [
          Fault.storage_error ~bit:52 ~iteration:it ~block:(target, 0)
            ~element:(Random.State.int st (2 * n), Random.State.int st block)
            ();
        ]
      in
      let a = Spd.random ~seed:(seed + 3) (2 * n) n in
      let r = Ftqr.Ft_qr.factor ~plan ~block a in
      r.Ftqr.Ft_qr.outcome = Ftqr.Ft_qr.Success)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_qr_reconstructs; prop_qr_storage_flip_absorbed ]

let () =
  Alcotest.run "qr"
    [
      ( "panelchk",
        [
          Alcotest.test_case "clean" `Quick test_panelchk_clean;
          Alcotest.test_case "locates in tall panel" `Quick
            test_panelchk_locates_in_tall_panel;
          Alcotest.test_case "nan anchor" `Quick test_panelchk_nan_anchor;
          Alcotest.test_case "two errors uncorrectable" `Quick
            test_panelchk_two_errors_uncorrectable;
        ] );
      ( "ft_qr",
        [
          Alcotest.test_case "clean, all schemes" `Quick test_qr_clean_all_schemes;
          Alcotest.test_case "storage error in Q" `Quick
            test_qr_storage_error_in_q_panel;
          Alcotest.test_case "computing error between projections" `Quick
            test_qr_computing_error_between_projections;
          Alcotest.test_case "no_ft silent" `Quick test_qr_no_ft_silent;
          Alcotest.test_case "offline redoes" `Quick test_qr_offline_detects;
          Alcotest.test_case "mgs window corrected" `Quick
            test_qr_mgs_window_corrected;
          Alcotest.test_case "rank-deficient fail-stop" `Quick
            test_qr_rank_deficient_fail_stop;
          Alcotest.test_case "validation" `Quick test_qr_validation;
          Alcotest.test_case "matches reference MGS" `Quick
            test_qr_matches_reference_mgs;
          Alcotest.test_case "fused factors bitwise = separate" `Quick
            test_qr_fused_bitwise;
          Alcotest.test_case "fused detection parity" `Quick
            test_qr_fused_detection_parity;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "scheme ordering" `Quick test_qr_sched_ordering;
          Alcotest.test_case "mgs window no rerun" `Quick
            test_qr_sched_mgs_window_no_rerun;
          Alcotest.test_case "storage rerun online" `Quick
            test_qr_sched_storage_rerun_online;
          Alcotest.test_case "validation" `Quick test_qr_sched_validation;
        ] );
      ("properties", props);
    ]
