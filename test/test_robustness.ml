(* PR-3 robustness suite: single-fault correction properties across
   every injection window, checksum self-protection regressions, the
   graduated recovery ladder, and the soak campaign machinery. *)

open Matrix
module C = Cholesky

let grid = 4
let block = 4
let n = grid * block

let cfg ?(scheme = Abft.Scheme.enhanced ()) ?(snapshot_interval = 0)
    ?(max_rollbacks = 2) ?(max_restarts = 3) () =
  C.Config.make ~machine:Hetsim.Machine.testbench ~block ~scheme ~max_restarts
    ~max_rollbacks ~snapshot_interval ()

let spd seed = Spd.random_spd ~seed n

let factor_single ?scheme ?snapshot_interval inj =
  C.Ft.factor ~plan:[ inj ] (cfg ?scheme ?snapshot_interval ()) (spd 11)

let bitwise_equal a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get a i j))
             (Int64.bits_of_float (Mat.get b i j)))
      then ok := false
    done
  done;
  !ok

let outcome_label (r : C.Ft.report) =
  Format.asprintf "%a" C.Ft.pp_outcome r.C.Ft.outcome

let op_name = function
  | Fault.Potf2 -> "potf2"
  | Fault.Syrk -> "syrk"
  | Fault.Trsm -> "trsm"
  | Fault.Gemm -> "gemm"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_success name (r : C.Ft.report) =
  Alcotest.(check string) (name ^ " outcome") "success" (outcome_label r);
  Alcotest.(check int) (name ^ " restarts") 0 r.C.Ft.stats.C.Ft.restarts

(* ------------------------------------------------------------------ *)
(* Property: every single fault, in every window, is absorbed inline   *)
(* ------------------------------------------------------------------ *)

(* All (iteration, op, block) combinations the 4x4-tile factorization
   actually executes, excluding POTF2 computing errors (entangled: the
   paper recovers those by recomputation, not inline). *)
let compute_sites =
  List.concat
    [
      List.init 3 (fun j -> (j + 1, Fault.Syrk, (j + 1, j + 1)));
      [ (1, Fault.Gemm, (2, 1)); (1, Fault.Gemm, (3, 1)); (2, Fault.Gemm, (3, 2)) ];
      List.concat_map
        (fun j -> List.init (grid - 1 - j) (fun i -> (j, Fault.Trsm, (j + 1 + i, j))))
        [ 0; 1; 2 ];
    ]

(* Flip deltas scale as v·2^(bit-52): from bit 38 up the perturbation
   (≥ 6e-5 relative) always clears the 1e-8-scaled rounding threshold,
   so inline correction with no restart is guaranteed. Below that a
   flip on a small element can fall under the threshold at its own
   block yet surface later as an entangled (uncorrectable) mismatch —
   the ladder may then legitimately burn a restart; the contract is
   only that the run still ends in Success. *)
let bits = [ 30; 34; 38; 45; 52 ]
let must_correct bit = bit >= 38

let test_single_compute_faults () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (iteration, op, blk) ->
          List.iter
            (fun bit ->
              let inj =
                {
                  Fault.iteration;
                  window = Fault.In_computation op;
                  block = blk;
                  element = (1, 2);
                  kind = Fault.Bit_flip { bit };
                }
              in
              let r = factor_single ~scheme inj in
              let name =
                Printf.sprintf "%s %s@%d bit%d" (Abft.Scheme.name scheme)
                  (op_name op) iteration bit
              in
              Alcotest.(check string)
                (name ^ " outcome") "success" (outcome_label r);
              if must_correct bit then begin
                Alcotest.(check int)
                  (name ^ " restarts") 0 r.C.Ft.stats.C.Ft.restarts;
                Alcotest.(check bool)
                  (name ^ " corrected inline") true
                  (r.C.Ft.stats.C.Ft.corrections
                   + r.C.Ft.stats.C.Ft.reconstructions
                   >= 1)
              end)
            bits)
        compute_sites)
    [ Abft.Scheme.Online; Abft.Scheme.enhanced () ]

let test_single_storage_faults () =
  (* storage flips need pre-read verification: Enhanced only; fire at
     an iteration no later than the block's last read (row index) *)
  List.iter
    (fun (iteration, blk) ->
      List.iter
        (fun bit ->
          let inj =
            Fault.storage_error ~bit ~iteration ~block:blk ~element:(2, 1) ()
          in
          let r = factor_single ~scheme:(Abft.Scheme.enhanced ()) inj in
          let name =
            Printf.sprintf "storage (%d,%d)@%d bit%d" (fst blk) (snd blk)
              iteration bit
          in
          Alcotest.(check string)
            (name ^ " outcome") "success" (outcome_label r);
          if must_correct bit then begin
            Alcotest.(check int)
              (name ^ " restarts") 0 r.C.Ft.stats.C.Ft.restarts;
            Alcotest.(check bool)
              (name ^ " corrected inline") true
              (r.C.Ft.stats.C.Ft.corrections
               + r.C.Ft.stats.C.Ft.reconstructions
               >= 1)
          end)
        bits)
    [ (0, (2, 0)); (1, (1, 1)); (2, (3, 2)); (3, (3, 3)); (1, (3, 0)) ]

let test_single_checksum_faults () =
  (* a primary-replica checksum flip: the factor must come out right
     and the store must heal itself (the fault fires at the start of an
     iteration in which the block is still verified) *)
  List.iter
    (fun scheme ->
      List.iter
        (fun (iteration, blk) ->
          let inj =
            Fault.checksum_error ~bit:40 ~iteration ~block:blk ~element:(0, 2)
              ()
          in
          let r = factor_single ~scheme inj in
          let name =
            Printf.sprintf "%s chk (%d,%d)@%d" (Abft.Scheme.name scheme)
              (fst blk) (snd blk) iteration
          in
          check_success name r;
          Alcotest.(check bool)
            (name ^ " store healed") true
            (r.C.Ft.stats.C.Ft.checksum_repairs >= 1))
        [ (1, (1, 1)); (2, (2, 2)); (3, (3, 3)); (1, (2, 1)); (0, (3, 0)) ])
    [ Abft.Scheme.Online; Abft.Scheme.enhanced () ]

let test_single_update_faults () =
  (* a wrong value written by the checksum-update kernel itself: only
     the primary replica is hit, so verification repairs the store and
     never touches the (clean) tile *)
  let sites =
    [
      (1, Fault.Syrk, (1, 1));
      (2, Fault.Syrk, (2, 2));
      (1, Fault.Gemm, (2, 1));
      (2, Fault.Gemm, (3, 2));
      (0, Fault.Trsm, (1, 0));
      (2, Fault.Trsm, (3, 2));
      (0, Fault.Potf2, (0, 0));
      (2, Fault.Potf2, (2, 2));
    ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun (iteration, op, blk) ->
          let inj =
            Fault.update_error ~delta:42. ~iteration ~op ~block:blk
              ~element:(1, 1) ()
          in
          let r = factor_single ~scheme inj in
          let name =
            Printf.sprintf "%s chk-update:%s (%d,%d)@%d"
              (Abft.Scheme.name scheme) (op_name op) (fst blk) (snd blk)
              iteration
          in
          check_success name r;
          Alcotest.(check bool)
            (name ^ " store healed") true
            (r.C.Ft.stats.C.Ft.checksum_repairs >= 1))
        sites)
    [ Abft.Scheme.Online; Abft.Scheme.enhanced () ]

(* ------------------------------------------------------------------ *)
(* Regression: a corrupted checksum block never patches clean data     *)
(* ------------------------------------------------------------------ *)

let test_checksum_corruption_never_patches_tile () =
  let a = Spd.random_spd ~seed:21 8 in
  let pristine = Mat.copy a in
  let chk = Abft.Checksum.encode a in
  (* corrupt the primary replica only — the tile stays clean *)
  Abft.Checksum.corrupt chk ~row:1 ~col:3 1e7;
  (match Abft.Verify.verify chk a with
  | Abft.Verify.Checksum_repaired { cells; corrections } ->
      Alcotest.(check bool) "cells flagged" true (cells >= 1);
      Alcotest.(check int) "no tile corrections" 0 (List.length corrections)
  | o ->
      Alcotest.failf "expected Checksum_repaired, got %a" Abft.Verify.pp_outcome
        o);
  Alcotest.(check bool) "tile bitwise untouched" true (bitwise_equal pristine a);
  (match Abft.Verify.verify chk a with
  | Abft.Verify.Clean -> ()
  | o -> Alcotest.failf "expected Clean after repair, got %a" Abft.Verify.pp_outcome o);
  Alcotest.(check bool) "replicas agree again" true
    (Abft.Checksum.copies_agree chk)

let test_checksum_fault_factor_identical () =
  (* a checksum-store fault must not change a single bit of the factor
     relative to the fault-free run *)
  let a = spd 31 in
  let clean = C.Ft.factor (cfg ()) a in
  let plan =
    [
      Fault.checksum_error ~bit:45 ~iteration:1 ~block:(2, 1) ~element:(1, 0) ();
      Fault.update_error ~delta:1e5 ~iteration:2 ~op:Fault.Gemm ~block:(3, 2)
        ~element:(0, 3) ();
    ]
  in
  let faulty = C.Ft.factor ~plan (cfg ()) a in
  check_success "chk-fault run" faulty;
  Alcotest.(check bool) "factor bitwise identical" true
    (bitwise_equal clean.C.Ft.factor faulty.C.Ft.factor)

(* ------------------------------------------------------------------ *)
(* Recovery ladder: rollback rung vs restart rung                      *)
(* ------------------------------------------------------------------ *)

(* Two errors in one column of a freshly written block: uncorrectable
   with d = 2, so the ladder must escalate past the inline rungs. The
   deltas are distinct — equal deltas can alias the d = 2 locator onto
   an integer (wrong) row, turning the burst into a mis-patch that
   surfaces later as a fail-stop instead of an uncorrectable verify. *)
let burst_plan =
  List.map
    (fun (row, delta) ->
      Fault.computing_error ~delta ~iteration:2 ~op:Fault.Gemm ~block:(3, 2)
        ~element:(row, 1) ())
    [ (0, 5e3); (2, 1.7e3) ]

let test_ladder_rollback () =
  let r =
    C.Ft.factor ~plan:burst_plan (cfg ~snapshot_interval:2 ()) (spd 41)
  in
  check_success "rollback run" r;
  Alcotest.(check bool) "snapshots taken" true (r.C.Ft.stats.C.Ft.snapshots >= 1);
  Alcotest.(check bool) "rolled back" true (r.C.Ft.stats.C.Ft.rollbacks >= 1)

let test_ladder_restart_when_snapshots_off () =
  let r =
    C.Ft.factor ~plan:burst_plan (cfg ~snapshot_interval:0 ()) (spd 41)
  in
  Alcotest.(check string) "outcome" "success" (outcome_label r);
  Alcotest.(check int) "no rollbacks" 0 r.C.Ft.stats.C.Ft.rollbacks;
  Alcotest.(check int) "one restart" 1 r.C.Ft.stats.C.Ft.restarts

let test_ladder_reconstruction_rung () =
  (* an overwhelming resident value cannot be delta-patched; the
     plain-sum rung rebuilds it *)
  let inj =
    {
      Fault.iteration = 1;
      window = Fault.In_storage;
      block = (2, 1);
      element = (3, 0);
      kind = Fault.Value_set { value = 1e40 };
    }
  in
  let r = factor_single ~scheme:(Abft.Scheme.enhanced ()) inj in
  check_success "anchor run" r;
  Alcotest.(check bool) "reconstructed" true
    (r.C.Ft.stats.C.Ft.reconstructions >= 1)

let test_ladder_gives_up_structured () =
  (* exhaust every rung: uncorrectable burst, no snapshots, no restarts *)
  let r =
    C.Ft.factor ~plan:burst_plan
      (cfg ~snapshot_interval:0 ~max_restarts:0 ()) (spd 41)
  in
  match r.C.Ft.outcome with
  | C.Ft.Gave_up reason ->
      Alcotest.(check bool) "not a fail-stop" false
        (C.Recovery.is_fail_stop reason);
      Alcotest.(check bool) "describe mentions block" true
        (let s = C.Recovery.describe reason in
         String.length s > 0)
  | _ -> Alcotest.failf "expected Gave_up, got %s" (outcome_label r)

(* ------------------------------------------------------------------ *)
(* Campaign machinery                                                  *)
(* ------------------------------------------------------------------ *)

let test_campaign_plans_deterministic () =
  List.iter
    (fun family ->
      let p1 = Campaign.plan family ~seed:9 ~grid:6 ~block:8 ~count:4 in
      let p2 = Campaign.plan family ~seed:9 ~grid:6 ~block:8 ~count:4 in
      Alcotest.(check string)
        (Campaign.family_name family ^ " deterministic")
        (Fault.to_string p1) (Fault.to_string p2))
    Campaign.all_families

let test_campaign_family_windows () =
  let windows family =
    Campaign.plan family ~seed:5 ~grid:6 ~block:8 ~count:40
    |> List.map (fun i -> i.Fault.window)
  in
  Alcotest.(check bool) "storm only checksum windows" true
    (List.for_all
       (function
         | Fault.In_checksum | Fault.In_update _ -> true
         | Fault.In_storage | Fault.In_computation _ | Fault.In_device
         | Fault.In_solver _ ->
             false)
       (windows Campaign.Checksum_storm));
  Alcotest.(check bool) "compute-heavy has no storage" true
    (List.for_all
       (function Fault.In_storage -> false | _ -> true)
       (windows Campaign.Compute_heavy));
  Alcotest.(check bool) "anchor all storage" true
    (List.for_all
       (function Fault.In_storage -> true | _ -> false)
       (windows Campaign.Anchor))

let test_campaign_aggregate_and_json () =
  let case id family =
    {
      Campaign.id;
      family;
      scheme = "enhanced-k1";
      grid = 4;
      block = 8;
      domains = 1;
      seed = id;
      plan = [];
    }
  in
  let base =
    {
      Campaign.case = case 0 Campaign.Mixed;
      outcome = Campaign.Success;
      residual = 1e-15;
      verifications = 10;
      corrections = 2;
      reconstructions = 0;
      checksum_repairs = 0;
      rollbacks = 0;
      snapshots = 1;
      restarts = 0;
      fired = 3;
      device = Campaign.zero_device;
      solver = Campaign.zero_solver;
      obs_metrics = [];
    }
  in
  let results =
    [
      base;
      {
        base with
        Campaign.case = case 1 Campaign.Burst;
        corrections = 0;
        rollbacks = 2;
        restarts = 1;
      };
      {
        base with
        Campaign.case = case 2 Campaign.Anchor;
        outcome = Campaign.Silent_corruption;
        residual = 0.5;
        reconstructions = 3;
      };
    ]
  in
  let agg = Campaign.aggregate results in
  Alcotest.(check int) "campaigns" 3 agg.Campaign.campaigns;
  Alcotest.(check int) "successes" 2 agg.Campaign.successes;
  Alcotest.(check int) "silent" 1 agg.Campaign.silent_corruptions;
  Alcotest.(check int) "corrections total" 4
    agg.Campaign.totals.Campaign.corrections_n;
  Alcotest.(check int) "campaigns with corrections" 2
    agg.Campaign.rung_campaigns.Campaign.corrections_n;
  Alcotest.(check int) "campaigns with rollbacks" 1
    agg.Campaign.rung_campaigns.Campaign.rollbacks_n;
  Alcotest.(check bool) "worst residual" true
    (abs_float (agg.Campaign.worst_residual -. 0.5) < 1e-12);
  let json = Campaign.to_json ~seed:7 results in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true (contains json needle))
    [
      "\"schema_version\": 5";
      "\"resplits\"";
      "\"aggregate\"";
      "\"rung_campaigns\"";
      "\"device_totals\"";
      "\"device_campaigns\"";
      "\"solver_totals\"";
      "\"solver_campaigns\"";
      "solver_iterations";
      "ftsoak";
    ]

(* The aggregate is an exact fold: over 50 synthetic campaigns covering
   every outcome — including [Gave_up], whose partial counters once
   silently drifted out of the totals — every counter family sums to
   its aggregate field, and every [*_campaigns] field counts exactly
   the campaigns that hit the mechanism at least once. The new
   reprobe/rejoin/resplit counters ride the same invariant. *)
let test_campaign_aggregate_invariant_50 () =
  let mk i =
    let case =
      {
        Campaign.id = i;
        family =
          (if i mod 2 = 0 then Campaign.Device_storm else Campaign.Mixed);
        scheme = "enhanced-k1";
        grid = 8;
        block = 8;
        domains = 1;
        seed = i;
        plan = [];
      }
    in
    let outcome =
      match i mod 7 with
      | 0 -> Campaign.Silent_corruption
      | 1 | 5 -> Campaign.Gave_up "cpu retry budget exhausted"
      | _ -> Campaign.Success
    in
    let device =
      if i mod 3 = 0 then
        {
          Campaign.retries_d = i mod 5;
          transients_d = (i + 1) mod 4;
          hangs_d = i mod 2;
          corrupted_d = (i + 2) mod 3;
          quarantines_d = (if i mod 6 = 0 then 1 else 0);
          fallbacks_d = i mod 4;
          losses_d = (if i mod 15 = 0 then 1 else 0);
          reprobes_d = i mod 3;
          rejoins_d = i mod 2;
          resplits_d = (i + 1) mod 5;
        }
      else Campaign.zero_device
    in
    let solver =
      if i mod 4 = 0 then
        {
          Campaign.iterations_s = 10 + i;
          verifications_s = i mod 6;
          detections_s = i mod 3;
          reconstructions_s = i mod 2;
          rollbacks_s = (i + 1) mod 2;
          restarts_s = i mod 5;
          precond_repairs_s = i mod 4;
        }
      else Campaign.zero_solver
    in
    {
      Campaign.case;
      outcome;
      residual = float_of_int (i mod 9) *. 1e-14;
      verifications = i;
      corrections = i mod 3;
      reconstructions = i mod 4;
      checksum_repairs = i mod 2;
      rollbacks = (i + 1) mod 3;
      snapshots = i mod 5;
      restarts = i mod 2;
      fired = i mod 6;
      device;
      solver;
      obs_metrics = [];
    }
  in
  let results = List.init 50 mk in
  let agg = Campaign.aggregate results in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let hits f =
    List.fold_left (fun a r -> a + if f r > 0 then 1 else 0) 0 results
  in
  Alcotest.(check int) "campaigns" 50 agg.Campaign.campaigns;
  Alcotest.(check int) "outcomes partition the campaigns" 50
    (agg.Campaign.successes + agg.Campaign.silent_corruptions
   + agg.Campaign.gave_ups);
  Alcotest.(check int) "gave_ups counted"
    (sum (fun r ->
         match r.Campaign.outcome with Campaign.Gave_up _ -> 1 | _ -> 0))
    agg.Campaign.gave_ups;
  Alcotest.(check int) "silent corruptions counted"
    (sum (fun r ->
         match r.Campaign.outcome with
         | Campaign.Silent_corruption -> 1
         | _ -> 0))
    agg.Campaign.silent_corruptions;
  Alcotest.(check int) "faults fired"
    (sum (fun r -> r.Campaign.fired))
    agg.Campaign.faults_fired;
  let rung_fields =
    [
      ("corrections", (fun (r : Campaign.run_result) -> r.Campaign.corrections),
       fun (c : Campaign.rung_counts) -> c.Campaign.corrections_n);
      ( "reconstructions",
        (fun r -> r.Campaign.reconstructions),
        fun c -> c.Campaign.reconstructions_n );
      ( "checksum_repairs",
        (fun r -> r.Campaign.checksum_repairs),
        fun c -> c.Campaign.checksum_repairs_n );
      ( "rollbacks",
        (fun r -> r.Campaign.rollbacks),
        fun c -> c.Campaign.rollbacks_n );
      ("restarts", (fun r -> r.Campaign.restarts), fun c -> c.Campaign.restarts_n);
    ]
  in
  List.iter
    (fun (name, per, of_rungs) ->
      Alcotest.(check int) (name ^ " total") (sum per)
        (of_rungs agg.Campaign.totals);
      Alcotest.(check int)
        (name ^ " campaigns")
        (hits per)
        (of_rungs agg.Campaign.rung_campaigns))
    rung_fields;
  let dev_fields =
    [
      ("retries", fun (d : Campaign.device_counts) -> d.Campaign.retries_d);
      ("transients", fun d -> d.Campaign.transients_d);
      ("hangs", fun d -> d.Campaign.hangs_d);
      ("corrupted", fun d -> d.Campaign.corrupted_d);
      ("quarantines", fun d -> d.Campaign.quarantines_d);
      ("fallbacks", fun d -> d.Campaign.fallbacks_d);
      ("losses", fun d -> d.Campaign.losses_d);
      ("reprobes", fun d -> d.Campaign.reprobes_d);
      ("rejoins", fun d -> d.Campaign.rejoins_d);
      ("resplits", fun d -> d.Campaign.resplits_d);
    ]
  in
  List.iter
    (fun (name, f) ->
      Alcotest.(check int) ("device " ^ name ^ " total")
        (sum (fun r -> f r.Campaign.device))
        (f agg.Campaign.device_totals);
      Alcotest.(check int)
        ("device " ^ name ^ " campaigns")
        (hits (fun r -> f r.Campaign.device))
        (f agg.Campaign.device_campaigns))
    dev_fields;
  let sol_fields =
    [
      ("iterations", fun (s : Campaign.solver_counts) -> s.Campaign.iterations_s);
      ("verifications", fun s -> s.Campaign.verifications_s);
      ("detections", fun s -> s.Campaign.detections_s);
      ("reconstructions", fun s -> s.Campaign.reconstructions_s);
      ("rollbacks", fun s -> s.Campaign.rollbacks_s);
      ("restarts", fun s -> s.Campaign.restarts_s);
      ("precond_repairs", fun s -> s.Campaign.precond_repairs_s);
    ]
  in
  List.iter
    (fun (name, f) ->
      Alcotest.(check int) ("solver " ^ name ^ " total")
        (sum (fun r -> f r.Campaign.solver))
        (f agg.Campaign.solver_totals);
      Alcotest.(check int)
        ("solver " ^ name ^ " campaigns")
        (hits (fun r -> f r.Campaign.solver))
        (f agg.Campaign.solver_campaigns))
    sol_fields;
  let worst =
    List.fold_left (fun a r -> Float.max a r.Campaign.residual) 0. results
  in
  Alcotest.(check bool) "worst residual is the max over every outcome" true
    (Float.equal worst agg.Campaign.worst_residual);
  Alcotest.(check bool) "silent rate" true
    (Float.equal
       (float_of_int agg.Campaign.silent_corruptions /. 50.)
       agg.Campaign.silent_rate)

let test_campaign_mini_soak () =
  (* a miniature end-to-end soak: every family against its weakest
     compatible scheme; zero silent corruption and the sub-restart
     rungs all exercised. Solver-storm campaigns run the PCG harness
     (as in bin/ftsoak) instead of a factorization. *)
  let pool = Parallel.Pool.create ~domains:1 () in
  let mk_case family scheme seed plan =
    {
      Campaign.id = seed;
      family;
      scheme = Abft.Scheme.name scheme;
      grid;
      block;
      domains = 1;
      seed;
      plan;
    }
  in
  let solver_case family scheme seed plan =
    let a = spd (seed + 100) in
    let b = Array.init n (fun i -> 1. +. float_of_int (i mod 3)) in
    let scfg =
      Solvers.Cg.config ~rtol:1e-9 ~verify_interval:2 ~checkpoint_interval:2
        ~max_restarts:3 ()
    in
    let precond = Solvers.Cg.block_jacobi ~block a in
    let r = Solvers.Cg.solve ~plan ~precond scfg a b in
    let true_resid =
      let rt = Array.copy b in
      Blas2.gemv ~alpha:(-1.) ~beta:1. a r.Solvers.Cg.x rt;
      Vec.nrm2 rt /. Vec.nrm2 b
    in
    let st = r.Solvers.Cg.stats in
    {
      Campaign.case = mk_case family scheme seed plan;
      outcome =
        (match r.Solvers.Cg.outcome with
        | Solvers.Cg.Converged ->
            if Float.is_finite true_resid && true_resid <= 1e-6 then
              Campaign.Success
            else Campaign.Silent_corruption
        | Solvers.Cg.Gave_up reason ->
            Campaign.Gave_up
              (Format.asprintf "solver: %a" Solvers.Cg.pp_reason reason));
      residual = true_resid;
      verifications = 0;
      corrections = 0;
      reconstructions = 0;
      checksum_repairs = 0;
      rollbacks = 0;
      snapshots = 0;
      restarts = 0;
      fired = List.length r.Solvers.Cg.injections_fired;
      device = Campaign.zero_device;
      solver =
        {
          Campaign.iterations_s = st.Solvers.Cg.iterations;
          verifications_s = st.Solvers.Cg.verifications;
          detections_s = st.Solvers.Cg.detections;
          reconstructions_s = st.Solvers.Cg.reconstructions;
          rollbacks_s = st.Solvers.Cg.rollbacks;
          restarts_s = st.Solvers.Cg.restarts;
          precond_repairs_s = st.Solvers.Cg.precond_repairs;
        };
      obs_metrics = [];
    }
  in
  let factor_case family scheme seed plan =
    let r =
      C.Ft.factor ~pool ~plan
        (cfg ~scheme ~snapshot_interval:2 ())
        (spd (seed + 100))
    in
    let st = r.C.Ft.stats in
    {
      Campaign.case = mk_case family scheme seed plan;
      outcome =
        (match r.C.Ft.outcome with
        | C.Ft.Success -> Campaign.Success
        | C.Ft.Silent_corruption -> Campaign.Silent_corruption
        | C.Ft.Gave_up reason -> Campaign.Gave_up (C.Recovery.describe reason));
      residual = r.C.Ft.residual;
      verifications = st.C.Ft.verifications;
      corrections = st.C.Ft.corrections;
      reconstructions = st.C.Ft.reconstructions;
      checksum_repairs = st.C.Ft.checksum_repairs;
      rollbacks = st.C.Ft.rollbacks;
      snapshots = st.C.Ft.snapshots;
      restarts = st.C.Ft.restarts;
      fired = List.length r.C.Ft.injections_fired;
      device = Campaign.zero_device;
      solver = Campaign.zero_solver;
      obs_metrics = [];
    }
  in
  let results =
    List.concat_map
      (fun family ->
        let scheme =
          if Campaign.needs_enhanced family then Abft.Scheme.enhanced ()
          else Abft.Scheme.Online
        in
        List.map
          (fun seed ->
            let plan = Campaign.plan family ~seed ~grid ~block ~count:3 in
            match family with
            | Campaign.Solver_storm -> solver_case family scheme seed plan
            | Campaign.Mixed | Campaign.Burst | Campaign.Storage_heavy
            | Campaign.Compute_heavy | Campaign.Checksum_storm
            | Campaign.Anchor | Campaign.Device_storm ->
                factor_case family scheme seed plan)
          [ 1; 2; 3; 4 ])
      Campaign.all_families
  in
  Parallel.Pool.shutdown pool;
  let agg = Campaign.aggregate results in
  Alcotest.(check int) "zero silent corruption" 0
    agg.Campaign.silent_corruptions;
  let rc = agg.Campaign.rung_campaigns in
  Alcotest.(check bool) "correction rung hit" true (rc.Campaign.corrections_n >= 1);
  Alcotest.(check bool) "reconstruction rung hit" true
    (rc.Campaign.reconstructions_n >= 1);
  Alcotest.(check bool) "checksum-repair rung hit" true
    (rc.Campaign.checksum_repairs_n >= 1);
  Alcotest.(check bool) "rollback rung hit" true (rc.Campaign.rollbacks_n >= 1);
  Alcotest.(check bool) "solver verification points ran" true
    (agg.Campaign.solver_totals.Campaign.verifications_s >= 1)

(* ------------------------------------------------------------------ *)
(* Device faults: healed by ABFT, deterministic across pool sizes      *)
(* ------------------------------------------------------------------ *)

let test_device_fault_healed_by_abft () =
  (* regression for the resilient-driver contract: a corrupted transfer
     is a storage error for the verify path — the Enhanced scheme heals
     it inline (no restart), it is never "retried away" *)
  List.iter
    (fun (iteration, blk) ->
      let inj =
        Fault.transfer_error ~bit:45 ~iteration ~block:blk ~element:(2, 1) ()
      in
      let r = factor_single ~scheme:(Abft.Scheme.enhanced ()) inj in
      let name =
        Printf.sprintf "device (%d,%d)@%d" (fst blk) (snd blk) iteration
      in
      Alcotest.(check string) (name ^ " outcome") "success" (outcome_label r);
      Alcotest.(check int) (name ^ " restarts") 0 r.C.Ft.stats.C.Ft.restarts;
      Alcotest.(check bool)
        (name ^ " corrected inline") true
        (r.C.Ft.stats.C.Ft.corrections + r.C.Ft.stats.C.Ft.reconstructions >= 1);
      Alcotest.(check int)
        (name ^ " fired") 1
        (List.length r.C.Ft.injections_fired))
    [ (0, (2, 0)); (1, (1, 1)); (2, (3, 2)); (1, (3, 0)) ]

let test_device_storm_pool_determinism () =
  (* identical seeds must give identical outcome/stats/residual traces
     no matter how many domains execute the numeric kernels *)
  let run domains =
    let pool = Parallel.Pool.create ~domains () in
    let results =
      List.map
        (fun seed ->
          let plan =
            Campaign.plan Campaign.Device_storm ~seed ~grid ~block ~count:3
          in
          let r =
            C.Ft.factor ~pool ~plan
              (cfg ~scheme:(Abft.Scheme.enhanced ()) ~snapshot_interval:2 ())
              (spd (seed + 200))
          in
          ( outcome_label r,
            r.C.Ft.stats,
            List.length r.C.Ft.injections_fired,
            r.C.Ft.residual ))
        [ 1; 2; 3 ]
    in
    Parallel.Pool.shutdown pool;
    results
  in
  let a = run 1 and b = run 2 in
  List.iter2
    (fun (o1, s1, f1, r1) (o2, s2, f2, r2) ->
      Alcotest.(check string) "same outcome" o1 o2;
      Alcotest.(check bool) "same stats" true (s1 = s2);
      Alcotest.(check int) "same fired count" f1 f2;
      Alcotest.(check bool) "bit-identical residual" true
        (Int64.equal (Int64.bits_of_float r1) (Int64.bits_of_float r2)))
    a b

let test_schedule_device_storm_deterministic () =
  (* same (machine profile, fault seed) ⇒ identical retry/quarantine/
     degradation trace from the timing schedule; the Degraded trace op
     appears exactly when the run reports degradation *)
  let profile = Campaign.device_profile ~seed:5 ~dropout:false in
  let m = Hetsim.Machine.with_reliability ~gpu:profile Hetsim.Machine.testbench in
  let run () =
    C.Schedule.run ~fault_seed:5
      (C.Config.make ~machine:m ~block ~scheme:(Abft.Scheme.enhanced ()) ())
      ~n:(grid * block)
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "bit-identical makespan" true
    (Float.equal r1.C.Schedule.makespan r2.C.Schedule.makespan);
  Alcotest.(check bool) "identical resilience stats" true
    (r1.C.Schedule.resilience = r2.C.Schedule.resilience);
  Alcotest.(check bool) "identical trace" true
    (r1.C.Schedule.trace = r2.C.Schedule.trace);
  let has_degraded_op =
    List.exists
      (fun op -> match op with C.Trace_op.Degraded _ -> true | _ -> false)
      r1.C.Schedule.trace
  in
  Alcotest.(check bool) "Degraded op iff degraded" r1.C.Schedule.degraded
    has_degraded_op

let () =
  Alcotest.run "robustness"
    [
      ( "single-fault",
        [
          Alcotest.test_case "compute windows" `Quick test_single_compute_faults;
          Alcotest.test_case "storage windows" `Quick test_single_storage_faults;
          Alcotest.test_case "checksum windows" `Quick test_single_checksum_faults;
          Alcotest.test_case "update windows" `Quick test_single_update_faults;
        ] );
      ( "self-protection",
        [
          Alcotest.test_case "never patches clean tile" `Quick
            test_checksum_corruption_never_patches_tile;
          Alcotest.test_case "factor bitwise unaffected" `Quick
            test_checksum_fault_factor_identical;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "rollback rung" `Quick test_ladder_rollback;
          Alcotest.test_case "restart when snapshots off" `Quick
            test_ladder_restart_when_snapshots_off;
          Alcotest.test_case "reconstruction rung" `Quick
            test_ladder_reconstruction_rung;
          Alcotest.test_case "structured give-up" `Quick
            test_ladder_gives_up_structured;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "plans deterministic" `Quick
            test_campaign_plans_deterministic;
          Alcotest.test_case "family windows" `Quick test_campaign_family_windows;
          Alcotest.test_case "aggregate and json" `Quick
            test_campaign_aggregate_and_json;
          Alcotest.test_case "50-campaign aggregate invariant" `Quick
            test_campaign_aggregate_invariant_50;
          Alcotest.test_case "mini soak" `Quick test_campaign_mini_soak;
        ] );
      ( "device",
        [
          Alcotest.test_case "corrupted transfer healed by ABFT" `Quick
            test_device_fault_healed_by_abft;
          Alcotest.test_case "pool-size determinism" `Quick
            test_device_storm_pool_determinism;
          Alcotest.test_case "schedule storm determinism" `Quick
            test_schedule_device_storm_deterministic;
        ] );
    ]
