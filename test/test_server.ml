(* Tests for the serving layer (lib/server): the breaker state machine
   (deterministic, driven with explicit clocks), admission control
   (backpressure, quotas, breakers), deadlines and cancellation,
   graceful shutdown, the queue-accounting identity, and the
   racecheck regression that runs two concurrent storming requests
   through the pool. *)

open Matrix
module C = Cholesky
module Server = Serving.Server
module Breaker = Serving.Breaker

let ones n = Array.make n 1.0

(* small, fast base config for most server tests *)
let small_cfg =
  {
    Server.default_config with
    Server.chol = C.Config.make ~block:8 ();
    seed = 42;
  }

(* one tenant named "t" with the clean policy *)
let one_tenant = [ ("t", Server.clean_tenant) ]

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)
(* ------------------------------------------------------------------ *)

let test_breaker_trips_after_failures () =
  let b = Breaker.create () in
  Alcotest.(check bool) "closed admits" true (Breaker.admit b ~now:0. = `Admit);
  Breaker.on_failure b ~now:0.;
  Breaker.on_failure b ~now:0.;
  Alcotest.(check bool) "still closed" true (Breaker.state b = Breaker.Closed);
  Breaker.on_failure b ~now:0.;
  Alcotest.(check bool) "open after 3" true (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  (match Breaker.admit b ~now:0. with
  | `Reject retry ->
      (* first cooldown: 50 ms with 25% jitter *)
      Alcotest.(check bool) "retry hint in jitter band" true
        (retry >= 0.05 *. 0.75 && retry <= 0.05 *. 1.25)
  | `Admit -> Alcotest.fail "open breaker admitted")

let test_breaker_success_resets () =
  let b = Breaker.create () in
  Breaker.on_failure b ~now:0.;
  Breaker.on_failure b ~now:0.;
  Breaker.on_success b;
  Breaker.on_failure b ~now:0.;
  Breaker.on_failure b ~now:0.;
  Alcotest.(check bool) "success reset the streak" true
    (Breaker.state b = Breaker.Closed)

let test_breaker_half_open_probe () =
  let b = Breaker.create () in
  for _ = 1 to 3 do
    Breaker.on_failure b ~now:0.
  done;
  (* well past any jittered first cooldown (max 50ms * 1.25) *)
  Alcotest.(check bool) "post-cooldown probe admitted" true
    (Breaker.admit b ~now:1.0 = `Admit);
  Alcotest.(check bool) "half-open" true (Breaker.state b = Breaker.Half_open);
  (* single-probe policy: a second concurrent admit is rejected *)
  (match Breaker.admit b ~now:1.0 with
  | `Reject _ -> ()
  | `Admit -> Alcotest.fail "second probe admitted");
  Breaker.on_success b;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed admits again" true
    (Breaker.admit b ~now:1.0 = `Admit)

let test_breaker_escalation () =
  let b = Breaker.create () in
  for _ = 1 to 3 do
    Breaker.on_failure b ~now:0.
  done;
  Alcotest.(check bool) "probe" true (Breaker.admit b ~now:1.0 = `Admit);
  Breaker.on_failure b ~now:1.0;
  Alcotest.(check bool) "probe failure re-opens" true
    (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  (match Breaker.admit b ~now:1.0 with
  | `Reject retry ->
      (* second cooldown escalates: 100 ms with 25% jitter *)
      Alcotest.(check bool) "escalated cooldown" true
        (retry >= 0.1 *. 0.75 && retry <= 0.1 *. 1.25)
  | `Admit -> Alcotest.fail "re-opened breaker admitted");
  (* a successful probe later resets the escalation *)
  Alcotest.(check bool) "probe 2" true (Breaker.admit b ~now:2.0 = `Admit);
  Breaker.on_success b;
  for _ = 1 to 3 do
    Breaker.on_failure b ~now:3.0
  done;
  match Breaker.admit b ~now:3.0 with
  | `Reject retry ->
      Alcotest.(check bool) "escalation reset after close" true
        (retry >= 0.05 *. 0.75 && retry <= 0.05 *. 1.25)
  | `Admit -> Alcotest.fail "freshly re-opened breaker admitted"

let test_breaker_policy_validation () =
  let bad = { Breaker.default_policy with Breaker.trip_after = 0 } in
  Alcotest.(check bool) "trip_after 0 invalid" true
    (Result.is_error (Breaker.validate_policy bad));
  let bad = { Breaker.default_policy with Breaker.jitter = 1.5 } in
  Alcotest.(check bool) "jitter 1.5 invalid" true
    (Result.is_error (Breaker.validate_policy bad))

(* ------------------------------------------------------------------ *)
(* Basic serving                                                       *)
(* ------------------------------------------------------------------ *)

let test_factor_and_solve () =
  let srv = Server.create small_cfg one_tenant in
  let n = 32 in
  let a = Spd.random_spd ~seed:7 n in
  let rhs = Blas2.gemv_alloc a (ones n) in
  let t1 =
    match Server.submit srv ~tenant:"t" (Server.Factor a) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "factor rejected: %a" Server.pp_rejection r
  in
  let t2 =
    match Server.submit srv ~tenant:"t" (Server.Solve { a; rhs }) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "solve rejected: %a" Server.pp_rejection r
  in
  (match Server.await srv t1 with
  | Server.Completed { report; solution = None; _ } ->
      Alcotest.(check bool) "factor success" true
        (report.C.Ft.outcome = C.Ft.Success)
  | o -> Alcotest.failf "factor: %a" Server.pp_outcome o);
  (match Server.await srv t2 with
  | Server.Completed { solution = Some x; _ } ->
      Array.iter
        (fun xi ->
          Alcotest.(check bool) "solution element near 1" true
            (Float.abs (xi -. 1.0) < 1e-5))
        x
  | o -> Alcotest.failf "solve: %a" Server.pp_outcome o);
  Server.shutdown srv ~drain:true;
  let c = Server.counters srv in
  Alcotest.(check int) "accepted" 2 c.Server.accepted;
  Alcotest.(check int) "completed" 2 c.Server.completed;
  Alcotest.(check int) "corruptions" 0 c.Server.corruptions

let test_unknown_tenant_and_shutdown_reject () =
  let srv = Server.create small_cfg one_tenant in
  (match Server.submit srv ~tenant:"nobody" (Server.Factor (Spd.random_spd 8)) with
  | Error (Server.Unknown_tenant _) -> ()
  | _ -> Alcotest.fail "unknown tenant accepted");
  Server.shutdown srv ~drain:true;
  (match Server.submit srv ~tenant:"t" (Server.Factor (Spd.random_spd 8)) with
  | Error Server.Shutting_down -> ()
  | _ -> Alcotest.fail "post-shutdown submit accepted");
  let c = Server.counters srv in
  Alcotest.(check int) "both rejections counted" 2 c.Server.rejected_other

(* ------------------------------------------------------------------ *)
(* Backpressure and quotas                                             *)
(* ------------------------------------------------------------------ *)

let test_backpressure_overload () =
  (* one slow worker, tiny queue: a burst must produce Overloaded
     rejections and the queue must never exceed its capacity *)
  let cfg =
    {
      small_cfg with
      Server.workers = 1;
      pool_domains = 1;
      queue_capacity = 2;
    }
  in
  let srv = Server.create cfg one_tenant in
  let a = Spd.random_spd ~seed:11 256 in
  let overloaded = ref 0 and tickets = ref [] in
  for _ = 1 to 8 do
    (match Server.submit srv ~tenant:"t" (Server.Factor a) with
    | Ok tk -> tickets := tk :: !tickets
    | Error (Server.Overloaded { retry_after_s }) ->
        Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0.);
        incr overloaded
    | Error r -> Alcotest.failf "unexpected rejection: %a" Server.pp_rejection r);
    Alcotest.(check bool) "queue bounded" true
      (Server.queue_depth srv <= cfg.Server.queue_capacity)
  done;
  Alcotest.(check bool) "burst rejected some" true (!overloaded > 0);
  List.iter (fun tk -> ignore (Server.await srv tk)) !tickets;
  Server.shutdown srv ~drain:true;
  let c = Server.counters srv in
  Alcotest.(check int) "overloaded counter" !overloaded
    c.Server.rejected_overloaded;
  Alcotest.(check int) "accounting identity"
    c.Server.accepted
    (c.Server.completed + c.Server.deadline_exceeded + c.Server.cancelled
   + c.Server.failed)

let test_quota_clips_tenant () =
  (* quota = weight * (capacity + workers) / total = 1 * (7+1) / 2 = 4 *)
  let cfg =
    {
      small_cfg with
      Server.workers = 1;
      pool_domains = 1;
      queue_capacity = 7;
    }
  in
  let srv =
    Server.create cfg
      [ ("a", Server.clean_tenant); ("b", Server.clean_tenant) ]
  in
  Alcotest.(check int) "quota" 4 (Server.quota srv "a");
  let big = Spd.random_spd ~seed:13 256 in
  let tickets = ref [] in
  let last = ref (Ok ()) in
  for i = 1 to 5 do
    match Server.submit srv ~tenant:"a" (Server.Factor big) with
    | Ok tk ->
        tickets := tk :: !tickets;
        Alcotest.(check bool) "first four admitted" true (i <= 4)
    | Error r -> last := Error (i, r)
  done;
  (match !last with
  | Error (5, Server.Quota_exceeded { outstanding = 4; quota = 4; _ }) -> ()
  | Error (i, r) ->
      Alcotest.failf "submit %d: unexpected rejection %a" i Server.pp_rejection r
  | Ok () -> Alcotest.fail "5th submission exceeded quota but was admitted");
  (* the other tenant still gets in: quota isolation, not global *)
  (match Server.submit srv ~tenant:"b" (Server.Factor big) with
  | Ok tk -> tickets := tk :: !tickets
  | Error r -> Alcotest.failf "tenant b rejected: %a" Server.pp_rejection r);
  List.iter (fun tk -> ignore (Server.await srv tk)) !tickets;
  Server.shutdown srv ~drain:true

(* ------------------------------------------------------------------ *)
(* Deadlines and cancellation                                          *)
(* ------------------------------------------------------------------ *)

let test_deadline_exceeded () =
  let cfg = { small_cfg with Server.workers = 1; pool_domains = 1 } in
  let srv = Server.create cfg one_tenant in
  let a = Spd.random_spd ~seed:17 256 in
  (* a deadline far below the service time of a 256/8 blocked factor:
     the driver must stop at an iteration boundary with partial stats *)
  let tk =
    match
      Server.submit srv ~tenant:"t" ~deadline_s:0.001 (Server.Factor a)
    with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "rejected: %a" Server.pp_rejection r
  in
  (match Server.await srv tk with
  | Server.Deadline_exceeded { elapsed_s; _ } ->
      Alcotest.(check bool) "elapsed covers the deadline" true
        (elapsed_s >= 0.001)
  | o -> Alcotest.failf "expected deadline, got %a" Server.pp_outcome o);
  (* the slot is free again: a clean request completes *)
  (match Server.submit srv ~tenant:"t" (Server.Factor (Spd.random_spd 32)) with
  | Ok tk2 -> (
      match Server.await srv tk2 with
      | Server.Completed _ -> ()
      | o -> Alcotest.failf "post-deadline request: %a" Server.pp_outcome o)
  | Error r -> Alcotest.failf "post-deadline submit: %a" Server.pp_rejection r);
  Server.shutdown srv ~drain:true;
  let c = Server.counters srv in
  Alcotest.(check int) "deadline counted" 1 c.Server.deadline_exceeded

let test_cancel_queued () =
  let cfg = { small_cfg with Server.workers = 1; pool_domains = 1 } in
  let srv = Server.create cfg one_tenant in
  let big = Spd.random_spd ~seed:19 256 in
  let t1 =
    match Server.submit srv ~tenant:"t" (Server.Factor big) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "t1 rejected: %a" Server.pp_rejection r
  in
  let t2 =
    match Server.submit srv ~tenant:"t" (Server.Factor big) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "t2 rejected: %a" Server.pp_rejection r
  in
  Server.cancel srv t2;
  (match Server.await srv t2 with
  | Server.Cancelled _ -> ()
  | o -> Alcotest.failf "expected cancelled, got %a" Server.pp_outcome o);
  ignore (Server.await srv t1);
  Server.shutdown srv ~drain:true;
  let c = Server.counters srv in
  Alcotest.(check int) "cancel counted" 1 c.Server.cancelled;
  Alcotest.(check int) "identity" c.Server.accepted
    (c.Server.completed + c.Server.deadline_exceeded + c.Server.cancelled
   + c.Server.failed)

let test_shutdown_no_drain_cancels_queue () =
  let cfg =
    {
      small_cfg with
      Server.workers = 1;
      pool_domains = 1;
      queue_capacity = 4;
    }
  in
  let srv = Server.create cfg one_tenant in
  let big = Spd.random_spd ~seed:23 256 in
  let tickets =
    List.filter_map
      (fun _ ->
        match Server.submit srv ~tenant:"t" (Server.Factor big) with
        | Ok tk -> Some tk
        | Error _ -> None)
      [ (); (); (); () ]
  in
  Server.shutdown srv ~drain:false;
  Alcotest.(check int) "queue drained" 0 (Server.queue_depth srv);
  Alcotest.(check int) "nothing inflight" 0 (Server.inflight srv);
  (* every ticket reached a terminal state *)
  List.iter
    (fun tk ->
      match Server.poll srv tk with
      | Some _ -> ()
      | None ->
          Alcotest.failf "ticket %d not settled" (Server.ticket_id tk))
    tickets;
  let c = Server.counters srv in
  Alcotest.(check int) "identity after abort" c.Server.accepted
    (c.Server.completed + c.Server.deadline_exceeded + c.Server.cancelled
   + c.Server.failed)

(* ------------------------------------------------------------------ *)
(* Breaker at the server level                                         *)
(* ------------------------------------------------------------------ *)

let test_server_breaker_sheds_failing_tenant () =
  (* non-square inputs fail structurally: three consecutive failures
     trip the tenant's breaker (long cooldown keeps it open for the
     assertion); the clean tenant keeps being admitted *)
  let policy =
    {
      Server.clean_tenant with
      Server.breaker =
        {
          Breaker.default_policy with
          Breaker.trip_after = 3;
          cooldown_base_s = 30.;
          cooldown_max_s = 60.;
        };
    }
  in
  let srv =
    Server.create small_cfg
      [ ("flaky", policy); ("clean", Server.clean_tenant) ]
  in
  let bad = Spd.random ~seed:29 8 16 in
  for i = 1 to 3 do
    match Server.submit srv ~tenant:"flaky" (Server.Factor bad) with
    | Ok tk -> (
        match Server.await srv tk with
        | Server.Failed _ -> ()
        | o -> Alcotest.failf "bad input %d: %a" i Server.pp_outcome o)
    | Error r -> Alcotest.failf "submit %d rejected: %a" i Server.pp_rejection r
  done;
  (match Server.submit srv ~tenant:"flaky" (Server.Factor bad) with
  | Error (Server.Breaker_open { retry_after_s; _ }) ->
      Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0.)
  | Ok _ -> Alcotest.fail "tripped breaker admitted"
  | Error r -> Alcotest.failf "unexpected rejection: %a" Server.pp_rejection r);
  (match Server.submit srv ~tenant:"clean" (Server.Factor (Spd.random_spd 32)) with
  | Ok tk -> (
      match Server.await srv tk with
      | Server.Completed _ -> ()
      | o -> Alcotest.failf "clean tenant: %a" Server.pp_outcome o)
  | Error r -> Alcotest.failf "clean tenant rejected: %a" Server.pp_rejection r);
  Server.shutdown srv ~drain:true;
  let c = Server.counters srv in
  Alcotest.(check int) "one trip" 1 c.Server.breaker_trips;
  Alcotest.(check int) "breaker rejection counted" 1 c.Server.rejected_breaker;
  Alcotest.(check int) "failures counted" 3 c.Server.failed

(* ------------------------------------------------------------------ *)
(* Racecheck regression: concurrent storming requests                  *)
(* ------------------------------------------------------------------ *)

let storm_tenant family =
  {
    Server.clean_tenant with
    Server.plan =
      (fun ~n ~block ~seed ->
        Campaign.plan family ~seed ~grid:(n / block) ~block ~count:4);
  }

let test_racecheck_concurrent_storms () =
  (* two storming requests running concurrently on separate worker
     slots under the dynamic race detector: per-run tag namespaces in
     Ft must keep their write claims disjoint, and no completed factor
     may be silently corrupt *)
  let prev = Sys.getenv_opt Parallel.Pool.racecheck_env_var in
  Unix.putenv Parallel.Pool.racecheck_env_var "1";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Parallel.Pool.racecheck_env_var
        (Option.value prev ~default:"0"))
    (fun () ->
      let cfg = { small_cfg with Server.workers = 2; pool_domains = 2 } in
      let srv =
        Server.create cfg
          [
            ("storm-a", storm_tenant Campaign.Storage_heavy);
            ("storm-b", storm_tenant Campaign.Mixed);
          ]
      in
      let a = Spd.random_spd ~seed:31 128 in
      let submit tenant =
        match Server.submit srv ~tenant (Server.Factor a) with
        | Ok tk -> tk
        | Error r ->
            Alcotest.failf "%s rejected: %a" tenant Server.pp_rejection r
      in
      let t1 = submit "storm-a" and t2 = submit "storm-b" in
      List.iter
        (fun tk ->
          match Server.await srv tk with
          | Server.Completed _ -> ()
          | Server.Failed { reason; _ } ->
              (* a Gave_up under a heavy storm is legitimate; a race
                 or silent corruption is the regression *)
              Alcotest.(check bool)
                ("no race/corruption in: " ^ reason)
                false
                (let has needle =
                   let ln = String.length needle and lr = String.length reason in
                   let rec at i =
                     i + ln <= lr && (String.sub reason i ln = needle || at (i + 1))
                   in
                   at 0
                 in
                 has "Race" || has "corruption")
          | o -> Alcotest.failf "storm request: %a" Server.pp_outcome o)
        [ t1; t2 ];
      Server.shutdown srv ~drain:true;
      let c = Server.counters srv in
      Alcotest.(check int) "zero silent corruption" 0 c.Server.corruptions)

(* ------------------------------------------------------------------ *)
(* Queue-accounting property                                           *)
(* ------------------------------------------------------------------ *)

(* random admit/reject/cancel/complete interleavings: whatever the
   sequence, every accepted ticket lands in exactly one terminal
   bucket and the queue is empty after drain *)
let accounting_property =
  QCheck.Test.make ~name:"accepted = completed + deadline + cancelled + failed"
    ~count:12
    QCheck.(pair (list (int_bound 5)) bool)
    (fun (ops, drain) ->
      let cfg =
        {
          Server.workers = 2;
          pool_domains = 1;
          queue_capacity = 3;
          chol = C.Config.make ~block:8 ();
          seed = 5;
        }
      in
      let srv =
        Server.create cfg
          [ ("a", Server.clean_tenant); ("b", Server.clean_tenant) ]
      in
      let a16 = Spd.random_spd ~seed:37 16 in
      let a64 = Spd.random_spd ~seed:41 64 in
      let tickets = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 -> (
              (* submit small/large work, alternating tenants *)
              let tenant = if op = 0 then "a" else "b" in
              let m = if op = 0 then a16 else a64 in
              match Server.submit srv ~tenant (Server.Factor m) with
              | Ok tk -> tickets := tk :: !tickets
              | Error _ -> ())
          | 2 -> (
              (* submit with an instantly-expired deadline *)
              match
                Server.submit srv ~tenant:"a" ~deadline_s:0.
                  (Server.Factor a64)
              with
              | Ok tk -> tickets := tk :: !tickets
              | Error _ -> ())
          | 3 -> (
              (* cancel the most recent ticket *)
              match !tickets with tk :: _ -> Server.cancel srv tk | [] -> ())
          | 4 -> (
              (* await the most recent ticket *)
              match !tickets with
              | tk :: _ -> ignore (Server.await srv tk)
              | [] -> ())
          | _ ->
              (* let the workers catch up a little *)
              ignore (Spd.random_spd ~seed:op 8))
        ops;
      Server.shutdown srv ~drain;
      let c = Server.counters srv in
      let settled =
        c.Server.completed + c.Server.deadline_exceeded + c.Server.cancelled
        + c.Server.failed
      in
      Server.queue_depth srv = 0
      && Server.inflight srv = 0
      && c.Server.accepted = settled
      && c.Server.accepted = List.length !tickets
      && List.for_all (fun tk -> Option.is_some (Server.poll srv tk)) !tickets)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "breaker",
        [
          Alcotest.test_case "trips after consecutive failures" `Quick
            test_breaker_trips_after_failures;
          Alcotest.test_case "success resets the streak" `Quick
            test_breaker_success_resets;
          Alcotest.test_case "half-open probe" `Quick
            test_breaker_half_open_probe;
          Alcotest.test_case "cooldown escalation and reset" `Quick
            test_breaker_escalation;
          Alcotest.test_case "policy validation" `Quick
            test_breaker_policy_validation;
        ] );
      ( "serving",
        [
          Alcotest.test_case "factor and solve complete" `Quick
            test_factor_and_solve;
          Alcotest.test_case "unknown tenant / shutdown rejections" `Quick
            test_unknown_tenant_and_shutdown_reject;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload backpressure" `Quick
            test_backpressure_overload;
          Alcotest.test_case "quota clips a tenant" `Quick
            test_quota_clips_tenant;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "deadline exceeded frees the slot" `Quick
            test_deadline_exceeded;
          Alcotest.test_case "cancel a queued request" `Quick
            test_cancel_queued;
          Alcotest.test_case "shutdown without drain cancels the queue" `Quick
            test_shutdown_no_drain_cancels_queue;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "breaker sheds a failing tenant" `Quick
            test_server_breaker_sheds_failing_tenant;
          Alcotest.test_case "concurrent storms under racecheck" `Quick
            test_racecheck_concurrent_storms;
        ] );
      ( "accounting",
        List.map QCheck_alcotest.to_alcotest [ accounting_property ] );
    ]
