(* PR-9 solver suite: the fault-tolerant PCG harness — convergence
   across preconditioners, the forward/backward/restart recovery
   ladder under targeted In_solver flips, preconditioner-factor
   healing, cooperative cancellation, config validation, and the
   Cholesky.Solve property tests (satellite: A · solve A b ≈ b across
   pool sizes). *)

open Matrix
module Cg = Solvers.Cg
module C = Cholesky

let n = 32
let block = 8

let spd seed = Spd.random_spd ~seed n
let rhs () = Array.init n (fun i -> 1. +. (float_of_int (i mod 5) /. 5.))

(* The acceptance yardstick never trusts the solver: recompute the
   relative true residual against the pristine inputs. *)
let true_residual a b (x : Vec.t) =
  let rt = Array.copy b in
  Blas2.gemv ~alpha:(-1.) ~beta:1. a x rt;
  Vec.nrm2 rt /. Vec.nrm2 b

let check_solved ?(tol = 1e-6) msg a b (r : Cg.report) =
  (match r.Cg.outcome with
  | Cg.Converged -> ()
  | Cg.Gave_up reason ->
      Alcotest.failf "%s: gave up: %a" msg Cg.pp_reason reason);
  let res = true_residual a b r.Cg.x in
  if not (Float.is_finite res && res <= tol) then
    Alcotest.failf "%s: residual %.3e exceeds %.0e" msg res tol

(* ------------------------------------------------------------------ *)
(* Clean convergence                                                   *)
(* ------------------------------------------------------------------ *)

let test_cg_identity () =
  let a = spd 3 and b = rhs () in
  let r = Cg.solve Cg.default a b in
  check_solved "identity" a b r;
  Alcotest.(check int) "no detections on a clean run" 0 r.Cg.stats.Cg.detections

let test_pcg_preconditioners () =
  let a = spd 5 and b = rhs () in
  List.iter
    (fun (name, p) ->
      let r = Cg.solve ~precond:p Cg.default a b in
      check_solved name a b r)
    [
      ("jacobi", Cg.jacobi a);
      ("block-jacobi", Cg.block_jacobi ~block a);
      ("full cholesky", Cg.cholesky a);
    ]

let test_pcg_cholesky_is_direct () =
  (* an exact factor preconditioner makes PCG iterative refinement:
     convergence in a handful of iterations, far below plain CG *)
  let a = Spd.random_spd_cond ~seed:9 ~cond:1e5 n and b = rhs () in
  let r = Cg.solve ~precond:(Cg.cholesky a) Cg.default a b in
  check_solved "exact precond" a b r;
  Alcotest.(check bool) "converges like a direct solve" true
    (r.Cg.stats.Cg.iterations <= 5)

let test_unprotected_matches_protected_clean () =
  let a = spd 7 and b = rhs () in
  let unprotected = Cg.solve (Cg.config ~verify_interval:0 ()) a b in
  let protected_ = Cg.solve Cg.default a b in
  check_solved "unprotected clean" a b unprotected;
  check_solved "protected clean" a b protected_;
  Alcotest.(check int) "same iteration count on clean runs"
    unprotected.Cg.stats.Cg.iterations protected_.Cg.stats.Cg.iterations

(* ------------------------------------------------------------------ *)
(* The recovery ladder, rung by rung                                   *)
(* ------------------------------------------------------------------ *)

let flip ~iteration ~target ?(element = (n / 2, 0)) ?(bit = 55) () =
  Fault.solver_error ~bit ~iteration ~target ~element ()

let solve_with ?(cfg = Cg.config ~verify_interval:2 ~checkpoint_interval:2 ())
    ~plan seed =
  let a = spd seed and b = rhs () in
  let r = Cg.solve ~plan ~precond:(Cg.block_jacobi ~block a) cfg a b in
  (a, b, r)

let test_r_flip_forward_reconstruction () =
  (* corrupting r breaks the recurrence/true-residual cross-check while
     x stays plausible: the cheapest rung — rebuild r from x — wins *)
  let a, b, r =
    solve_with ~plan:[ flip ~iteration:3 ~target:Fault.Sol_r () ] 21
  in
  check_solved "r flip" a b r;
  Alcotest.(check int) "fired" 1 (List.length r.Cg.injections_fired);
  Alcotest.(check bool) "detected" true (r.Cg.stats.Cg.detections >= 1);
  Alcotest.(check bool) "forward reconstruction rung" true
    (r.Cg.stats.Cg.reconstructions >= 1);
  Alcotest.(check int) "no rollback needed" 0 r.Cg.stats.Cg.rollbacks

let test_x_flip_rollback () =
  (* a high-bit flip in x destroys the iterate itself: forward
     reconstruction would rebuild r from garbage, so the ladder falls
     back to the last verified checkpoint *)
  let a, b, r =
    solve_with ~plan:[ flip ~iteration:3 ~target:Fault.Sol_x ~bit:62 () ] 23
  in
  check_solved "x flip" a b r;
  Alcotest.(check bool) "detected" true (r.Cg.stats.Cg.detections >= 1);
  Alcotest.(check bool) "rollback rung" true (r.Cg.stats.Cg.rollbacks >= 1)

let test_x_flip_restart_without_checkpoints () =
  (* same corruption with checkpointing disabled: the backward rung has
     nothing to restore, so the ladder escalates to a full restart *)
  let a, b, r =
    solve_with
      ~cfg:(Cg.config ~verify_interval:2 ~checkpoint_interval:0 ())
      ~plan:[ flip ~iteration:3 ~target:Fault.Sol_x ~bit:62 () ]
      23
  in
  check_solved "x flip, no checkpoints" a b r;
  Alcotest.(check int) "no rollbacks possible" 0 r.Cg.stats.Cg.rollbacks;
  Alcotest.(check bool) "restart rung" true (r.Cg.stats.Cg.restarts >= 1)

let test_p_flip_stalls_then_restarts () =
  (* p-corruption is the invariant-preserving case: x and r keep being
     updated consistently with the corrupted direction, so the residual
     cross-check cannot see it — the harness still converges to a
     verified answer (possibly via the iteration-budget restart),
     and must never report a corrupted one *)
  let a, b, r =
    solve_with ~plan:[ flip ~iteration:3 ~target:Fault.Sol_p ~bit:58 () ] 27
  in
  check_solved "p flip" a b r

let test_precond_flip_healed () =
  (* the factor guard: column sums disagree bitwise at the next
     verification point, the column heals from the pristine replica *)
  let a, b, r =
    solve_with
      ~plan:
        [ flip ~iteration:3 ~target:Fault.Sol_precond ~element:(2, 1) () ]
      29
  in
  check_solved "precond flip" a b r;
  Alcotest.(check bool) "factor healed" true
    (r.Cg.stats.Cg.precond_repairs >= 1)

let test_unprotected_is_silently_wrong () =
  (* the motivating contrast: the same x flip that the protected solver
     detects and recovers from sails through the unprotected recurrence
     (r never sees the corruption), producing a "converged" iterate
     whose true residual is garbage *)
  let plan = [ flip ~iteration:3 ~target:Fault.Sol_x ~bit:62 () ] in
  let a = spd 23 and b = rhs () in
  let u =
    Cg.solve ~plan ~precond:(Cg.block_jacobi ~block a)
      (Cg.config ~verify_interval:0 ())
      a b
  in
  (match u.Cg.outcome with
  | Cg.Converged ->
      (* the huge iterate overflows A·x, so "garbage" shows up as
         either a big residual or a non-finite one *)
      let res = true_residual a b u.Cg.x in
      Alcotest.(check bool) "unprotected residual is garbage" true
        ((not (Float.is_finite res)) || res > 1e-3)
  | Cg.Gave_up _ -> ());
  let a', b', p =
    solve_with ~plan:[ flip ~iteration:3 ~target:Fault.Sol_x ~bit:62 () ] 23
  in
  check_solved "protected twin recovers" a' b' p

let test_storm_survives () =
  (* a randomized multi-window storm per seed; every run must end in a
     verified answer or a structured give-up, never silence *)
  for seed = 1 to 20 do
    let plan = Fault.random_solver_plan ~seed ~n ~iters:10 ~count:4 () in
    let a, b, r = solve_with ~plan seed in
    match r.Cg.outcome with
    | Cg.Converged ->
        let res = true_residual a b r.Cg.x in
        if not (Float.is_finite res && res <= 1e-6) then
          Alcotest.failf "seed %d: silent corruption (residual %.3e)" seed res
    | Cg.Gave_up _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Cancellation and config validation                                  *)
(* ------------------------------------------------------------------ *)

let test_cancel_raises () =
  let a = spd 31 and b = rhs () in
  (match Cg.solve ~cancel:(fun () -> true) Cg.default a b with
  | _ -> Alcotest.fail "expected Cancelled"
  | exception Cg.Cancelled { iteration; stats } ->
      Alcotest.(check int) "cancelled before the first update" 0 iteration;
      Alcotest.(check int) "no iterations ran" 0 stats.Cg.iterations);
  let calls = ref 0 in
  let cancel () =
    incr calls;
    !calls > 4
  in
  match Cg.solve ~cancel Cg.default a b with
  | _ -> Alcotest.fail "expected mid-solve Cancelled"
  | exception Cg.Cancelled { iteration; _ } ->
      Alcotest.(check bool) "stopped at an iteration boundary" true
        (iteration > 0)

let test_config_validation () =
  let raises msg f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument _ -> ()
  in
  raises "negative verify_interval" (fun () ->
      Cg.config ~verify_interval:(-1) ());
  raises "negative checkpoint_interval" (fun () ->
      Cg.config ~checkpoint_interval:(-2) ());
  raises "negative max_rollbacks" (fun () -> Cg.config ~max_rollbacks:(-1) ());
  raises "zero rtol" (fun () -> Cg.config ~rtol:0. ());
  raises "negative slack" (fun () -> Cg.config ~verify_slack:(-1e-6) ());
  (* 0 is the documented "disabled" value, not an error *)
  ignore (Cg.config ~verify_interval:0 ~checkpoint_interval:0 ());
  raises "shape mismatch" (fun () ->
      Cg.solve Cg.default (spd 1) (Array.make (n + 1) 1.))

(* Satellite regression: Cholesky.Config.make must reject a negative
   snapshot cadence loudly instead of silently never snapshotting. *)
let test_cholesky_config_rejects_negative_snapshot_interval () =
  (match
     C.Config.make ~machine:Hetsim.Machine.testbench ~block
       ~snapshot_interval:(-1) ()
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the field" true
        (contains "snapshot_interval" msg));
  (* 0 stays the documented "disabled" value *)
  ignore (C.Config.make ~machine:Hetsim.Machine.testbench ~block ())

(* Satellite regression: solver plans cannot silently over-allocate
   their window fractions. *)
let test_solver_plan_fraction_validation () =
  let raises msg f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument _ -> ()
  in
  raises "sum > 1" (fun () ->
      Fault.random_solver_plan ~seed:1 ~n ~iters:8 ~count:3 ~x_fraction:0.5
        ~r_fraction:0.4 ~p_fraction:0.3 ());
  raises "negative fraction" (fun () ->
      Fault.random_solver_plan ~seed:1 ~n ~iters:8 ~count:3
        ~x_fraction:(-0.1) ());
  raises "fraction > 1" (fun () ->
      Fault.random_solver_plan ~seed:1 ~n ~iters:8 ~count:3 ~p_fraction:1.5 ());
  (* a plan summing exactly to 1 is legal and lands every injection *)
  let plan =
    Fault.random_solver_plan ~seed:2 ~n ~iters:8 ~count:6 ~x_fraction:0.5
      ~r_fraction:0.5 ~p_fraction:0. ~precond_fraction:0. ()
  in
  Alcotest.(check int) "full allocation" 6 (List.length plan);
  List.iter
    (fun (inj : Fault.injection) ->
      match inj.Fault.window with
      | Fault.In_solver (Fault.Sol_x | Fault.Sol_r) -> ()
      | _ ->
          Alcotest.failf "unexpected window %s"
            (Format.asprintf "%a" Fault.pp_injection inj))
    plan;
  (* the factorization-plan generator enforces the same invariant *)
  raises "random_plan over-allocated" (fun () ->
      Fault.random_plan ~seed:1 ~grid:4 ~block:8 ~count:3
        ~storage_fraction:0.8 ~checksum_fraction:0.4 ())

(* ------------------------------------------------------------------ *)
(* Injector fire_solver unit behaviour                                 *)
(* ------------------------------------------------------------------ *)

let test_fire_solver_targets_and_pending () =
  let x = Array.make 4 1. and r = Array.make 4 1. in
  let plan =
    [
      Fault.solver_error ~iteration:2 ~target:Fault.Sol_x ~element:(1, 0) ();
      Fault.solver_error ~iteration:5 ~target:Fault.Sol_r ~element:(2, 0) ();
      (* out of range: must stay unapplied, not crash *)
      Fault.solver_error ~iteration:2 ~target:Fault.Sol_r ~element:(9, 0) ();
    ]
  in
  let inj = Injector.create plan in
  let lookup = function
    | Fault.Sol_x -> Some (`Vec x)
    | Fault.Sol_r -> Some (`Vec r)
    | Fault.Sol_p | Fault.Sol_precond -> None
  in
  Injector.fire_solver inj ~iteration:1 ~lookup;
  Alcotest.(check int) "nothing due at iteration 1" 0
    (Injector.fired_count inj);
  Injector.fire_solver inj ~iteration:2 ~lookup;
  Alcotest.(check int) "only the in-range x flip fired" 1
    (Injector.fired_count inj);
  Alcotest.(check bool) "x mutated" true (not (Float.equal x.(1) 1.));
  Alcotest.(check bool) "r untouched" true (Float.equal r.(2) 1.);
  Injector.fire_solver inj ~iteration:5 ~lookup;
  Alcotest.(check int) "r flip fired at its iteration" 2
    (Injector.fired_count inj);
  Alcotest.(check bool) "r mutated" true (not (Float.equal r.(2) 1.))

(* ------------------------------------------------------------------ *)
(* Satellite: Cholesky.Solve property tests across pool sizes          *)
(* ------------------------------------------------------------------ *)

let prop_solve_roundtrip =
  QCheck.Test.make ~name:"A * (Solve.solve_vec A b) ~ b across pool sizes"
    ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 2 6))
    (fun (seed, grid) ->
      let n = grid * 4 in
      let a = Spd.random_spd ~seed n in
      let b = Array.init n (fun i -> float_of_int (1 + (i mod 7))) in
      List.for_all
        (fun domains ->
          let pool = Parallel.Pool.create ~domains () in
          let t =
            C.Solve.factorize ~pool
              ~cfg:
                (C.Config.make ~machine:Hetsim.Machine.testbench ~block:4 ())
              a
          in
          Parallel.Pool.shutdown pool;
          let x, _ = C.Solve.solve_vec t b in
          let ax = Array.make n 0. in
          Blas2.gemv a x ax;
          let err = ref 0. and scale = ref 0. in
          for i = 0 to n - 1 do
            err := Float.max !err (Float.abs (ax.(i) -. b.(i)));
            scale := Float.max !scale (Float.abs b.(i))
          done;
          !err <= 1e-8 *. !scale)
        [ 1; 2; 4 ])

let prop_pcg_agrees_with_direct =
  QCheck.Test.make ~name:"PCG and the direct solve agree" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let a = Spd.random_spd ~seed n in
      let b = rhs () in
      let t =
        C.Solve.factorize
          ~cfg:(C.Config.make ~machine:Hetsim.Machine.testbench ~block ())
          a
      in
      let xd, _ = C.Solve.solve_vec t b in
      let r = Cg.solve ~precond:(Cg.ic (C.Solve.factor_matrix t)) Cg.default a b in
      r.Cg.outcome = Cg.Converged
      && Vec.nrm2 (Array.init n (fun i -> r.Cg.x.(i) -. xd.(i)))
         <= 1e-6 *. Float.max 1. (Vec.nrm2 xd))

let () =
  Alcotest.run "solvers"
    [
      ( "convergence",
        [
          Alcotest.test_case "plain CG" `Quick test_cg_identity;
          Alcotest.test_case "preconditioners" `Quick test_pcg_preconditioners;
          Alcotest.test_case "exact precond is direct" `Quick
            test_pcg_cholesky_is_direct;
          Alcotest.test_case "protection is free when clean" `Quick
            test_unprotected_matches_protected_clean;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "r flip: forward reconstruction" `Quick
            test_r_flip_forward_reconstruction;
          Alcotest.test_case "x flip: rollback" `Quick test_x_flip_rollback;
          Alcotest.test_case "x flip, no checkpoints: restart" `Quick
            test_x_flip_restart_without_checkpoints;
          Alcotest.test_case "p flip: verified despite invariance" `Quick
            test_p_flip_stalls_then_restarts;
          Alcotest.test_case "precond flip: healed" `Quick
            test_precond_flip_healed;
          Alcotest.test_case "unprotected silently wrong, protected not"
            `Quick test_unprotected_is_silently_wrong;
          Alcotest.test_case "random storms never silent" `Quick
            test_storm_survives;
        ] );
      ( "control",
        [
          Alcotest.test_case "cancellation" `Quick test_cancel_raises;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "Cholesky.Config snapshot_interval" `Quick
            test_cholesky_config_rejects_negative_snapshot_interval;
          Alcotest.test_case "solver plan fractions" `Quick
            test_solver_plan_fraction_validation;
          Alcotest.test_case "fire_solver targeting" `Quick
            test_fire_solver_targets_and_pending;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_solve_roundtrip; prop_pcg_agrees_with_direct ] );
    ]
