(* Tests for the application workloads: least squares, Kalman, Monte
   Carlo, Gaussian-process regression — each exercising the public
   fault-tolerant Cholesky API, with and without injected faults. *)

open Matrix

(* A config whose tile grid is at least 3x3 for an n-order matrix, and
   a storage flip in a mid-matrix tile early enough to be re-read. *)
let fault_cfg_and_plan n =
  let block = Workloads.Util.pick_block ~target:(max 1 (n / 3)) n in
  let cfg = Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block () in
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:1 ~block:(2, 0) ~element:(0, 0) () ]
  in
  (cfg, plan)

(* ------------------------------------------------------------------ *)
(* Util                                                                *)
(* ------------------------------------------------------------------ *)

let test_pick_block () =
  Alcotest.(check int) "48 -> 48's largest divisor <= 64" 48
    (Workloads.Util.pick_block 48);
  Alcotest.(check int) "100 -> 50" 50 (Workloads.Util.pick_block 100);
  Alcotest.(check int) "prime -> 1" 1 (Workloads.Util.pick_block 97);
  Alcotest.(check int) "target respected" 8
    (Workloads.Util.pick_block ~target:8 64)

let test_gaussian_moments () =
  let st = Random.State.make [| 9 |] in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Workloads.Util.gaussian st) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. float_of_int n
  in
  Alcotest.(check bool) "mean ~ 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (abs_float (var -. 1.) < 0.05)

let test_ft_cholesky_helper () =
  let a = Spd.random_spd ~seed:2 40 in
  let r = Workloads.Util.ft_cholesky a in
  Alcotest.(check bool) "factored" true (r.Cholesky.Ft.residual < 1e-10)

(* ------------------------------------------------------------------ *)
(* Least squares                                                       *)
(* ------------------------------------------------------------------ *)

let test_lstsq_recovers_truth () =
  let a, b, x_true = Workloads.Lstsq.synthetic_problem ~rows:120 ~cols:24 () in
  let sol = Workloads.Lstsq.solve ~a ~b () in
  Alcotest.(check bool) "x ~ x_true" true
    (Mat.approx_equal ~tol:1e-2 x_true sol.Workloads.Lstsq.x);
  Alcotest.(check bool) "residual small" true
    (sol.Workloads.Lstsq.residual_norm < 1.)

let test_lstsq_with_fault () =
  let a, b, x_true = Workloads.Lstsq.synthetic_problem ~rows:120 ~cols:24 () in
  let cfg, plan = fault_cfg_and_plan 24 in
  let sol = Workloads.Lstsq.solve ~cfg ~plan ~a ~b () in
  Alcotest.(check bool) "fault fired" true
    (List.length
       sol.Workloads.Lstsq.factorization.Cholesky.Ft.injections_fired > 0);
  Alcotest.(check bool) "x ~ x_true despite fault" true
    (Mat.approx_equal ~tol:1e-2 x_true sol.Workloads.Lstsq.x)

let test_lstsq_shape_guard () =
  let a = Spd.random ~seed:1 10 4 and b = Spd.random ~seed:2 9 1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Workloads.Lstsq.solve ~a ~b ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Kalman                                                              *)
(* ------------------------------------------------------------------ *)

let test_kalman_tracks () =
  let model = Workloads.Kalman.constant_velocity ~dim:8 () in
  let track = Workloads.Kalman.run model ~steps:40 in
  Alcotest.(check int) "estimates per step" 40
    (List.length track.Workloads.Kalman.estimates);
  Alcotest.(check int) "factorizations per step" 40
    track.Workloads.Kalman.factorizations;
  (* Filtered RMSE must beat the raw measurement noise (r = 0.25 ->
     sigma = 0.5). *)
  Alcotest.(check bool) "rmse below measurement noise" true
    (track.Workloads.Kalman.rmse < 0.5)

let test_kalman_with_fault () =
  let model = Workloads.Kalman.constant_velocity ~dim:8 () in
  let cfg, _ = fault_cfg_and_plan 8 in
  let clean = Workloads.Kalman.run model ~cfg ~steps:30 in
  let cfg, plan = fault_cfg_and_plan 8 in
  let faulty = Workloads.Kalman.run model ~cfg ~plan_at:(10, plan) ~steps:30 in
  (* The fault was absorbed: same trajectory estimates as a clean run. *)
  Alcotest.(check bool) "identical estimates" true
    (List.for_all2
       (fun a b -> Mat.approx_equal ~tol:1e-9 a b)
       clean.Workloads.Kalman.estimates faulty.Workloads.Kalman.estimates)

let test_kalman_validation () =
  Alcotest.(check bool) "dim 0 rejected" true
    (try
       ignore (Workloads.Kalman.constant_velocity ~dim:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Monte Carlo                                                         *)
(* ------------------------------------------------------------------ *)

let test_montecarlo_estimates () =
  let cov = Workloads.Montecarlo.correlated_returns_cov ~assets:24 () in
  let weights = Vec.init 24 (fun _ -> 1. /. 24.) in
  let est = Workloads.Montecarlo.simulate ~cov ~weights ~samples:4000 () in
  (* Zero-mean returns: sample mean near zero, var_95 positive and of
     the order of 1.65 sigma. *)
  Alcotest.(check bool) "mean near 0" true
    (abs_float est.Workloads.Montecarlo.mean
    < 3. *. est.Workloads.Montecarlo.stddev /. sqrt 4000.);
  Alcotest.(check bool) "var_95 plausible" true
    (est.Workloads.Montecarlo.var_95 > est.Workloads.Montecarlo.stddev
    && est.Workloads.Montecarlo.var_95 < 2.5 *. est.Workloads.Montecarlo.stddev)

let test_montecarlo_fault_invariant () =
  let cov = Workloads.Montecarlo.correlated_returns_cov ~assets:24 () in
  let weights = Vec.init 24 (fun _ -> 1. /. 24.) in
  let clean = Workloads.Montecarlo.simulate ~cov ~weights ~samples:500 () in
  let cfg, plan = fault_cfg_and_plan 24 in
  let faulty =
    Workloads.Montecarlo.simulate ~cfg ~plan ~cov ~weights ~samples:500 ()
  in
  (* Same seed, fault absorbed: bitwise-identical sampling. *)
  Alcotest.(check (float 1e-12)) "mean identical"
    clean.Workloads.Montecarlo.mean faulty.Workloads.Montecarlo.mean

let test_montecarlo_cov_is_spd () =
  let cov = Workloads.Montecarlo.correlated_returns_cov ~assets:32 () in
  ignore (Lapack.cholesky cov)

(* ------------------------------------------------------------------ *)
(* Gaussian process                                                    *)
(* ------------------------------------------------------------------ *)

let test_gp_interpolates () =
  let n = 30 in
  let x = Vec.init n (fun i -> float_of_int i /. 3.) in
  let y = Array.map sin x in
  let gp = Workloads.Gp.fit ~noise:0.01 ~x ~y () in
  let test_x = [| 2.15; 5.05; 8.33 |] in
  let means, vars = Workloads.Gp.predict gp test_x in
  Array.iteri
    (fun i xstar ->
      Alcotest.(check bool)
        (Printf.sprintf "mean near sin at %.2f" xstar)
        true
        (abs_float (means.(i) -. sin xstar) < 0.05))
    test_x;
  Alcotest.(check bool) "variance small inside data" true
    (Array.for_all (fun v -> v < 0.05) vars)

let test_gp_variance_grows_offdata () =
  let n = 20 in
  let x = Vec.init n (fun i -> float_of_int i /. 2.) in
  let y = Array.map cos x in
  let gp = Workloads.Gp.fit ~x ~y () in
  let _, vars = Workloads.Gp.predict gp [| 5.; 50. |] in
  Alcotest.(check bool) "extrapolation more uncertain" true (vars.(1) > vars.(0))

let test_gp_log_ml_finite () =
  let x = Vec.init 16 float_of_int in
  let y = Array.map (fun v -> 0.1 *. v) x in
  let gp = Workloads.Gp.fit ~x ~y () in
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Workloads.Gp.log_marginal_likelihood gp))

let test_gp_with_fault () =
  let n = 24 in
  let x = Vec.init n (fun i -> float_of_int i /. 3.) in
  let y = Array.map sin x in
  let clean = Workloads.Gp.fit ~noise:0.01 ~x ~y () in
  let cfg, plan = fault_cfg_and_plan n in
  let faulty = Workloads.Gp.fit ~cfg ~plan ~noise:0.01 ~x ~y () in
  let m1, _ = Workloads.Gp.predict clean [| 4.4 |] in
  let m2, _ = Workloads.Gp.predict faulty [| 4.4 |] in
  Alcotest.(check (float 1e-9)) "same prediction" m1.(0) m2.(0);
  Alcotest.(check bool) "fault really fired" true
    (List.length
       (Workloads.Gp.factorization faulty).Cholesky.Ft.injections_fired
    > 0)

let () =
  Alcotest.run "workloads"
    [
      ( "util",
        [
          Alcotest.test_case "pick_block" `Quick test_pick_block;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "ft_cholesky helper" `Quick test_ft_cholesky_helper;
        ] );
      ( "lstsq",
        [
          Alcotest.test_case "recovers truth" `Quick test_lstsq_recovers_truth;
          Alcotest.test_case "with fault" `Quick test_lstsq_with_fault;
          Alcotest.test_case "shape guard" `Quick test_lstsq_shape_guard;
        ] );
      ( "kalman",
        [
          Alcotest.test_case "tracks" `Quick test_kalman_tracks;
          Alcotest.test_case "with fault" `Quick test_kalman_with_fault;
          Alcotest.test_case "validation" `Quick test_kalman_validation;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "estimates" `Quick test_montecarlo_estimates;
          Alcotest.test_case "fault invariant" `Quick
            test_montecarlo_fault_invariant;
          Alcotest.test_case "cov is SPD" `Quick test_montecarlo_cov_is_spd;
        ] );
      ( "gp",
        [
          Alcotest.test_case "interpolates" `Quick test_gp_interpolates;
          Alcotest.test_case "variance off data" `Quick
            test_gp_variance_grows_offdata;
          Alcotest.test_case "log ml finite" `Quick test_gp_log_ml_finite;
          Alcotest.test_case "with fault" `Quick test_gp_with_fault;
        ] );
    ]
